// Regression coverage for the send_times_ / send_queue_ alignment
// (single_ring.h): the send-latency timestamp deque must track the send
// queue exactly. The old code silently substituted now() when they
// desynced, polluting srp.delivery_latency_us with ~0 queue-wait samples;
// the fix counts the slip in Stats::send_time_desync and SKIPS the sample.
#include <gtest/gtest.h>

#include "harness/sim_cluster.h"
#include "srp/single_ring.h"

namespace totem::srp {

/// White-box seam (friend of SingleRing): lets the regression test induce
/// the desync the production code is audited never to produce on its own.
class SingleRingTestPeer {
 public:
  static std::size_t send_time_count(const SingleRing& r) {
    return r.send_times_.size();
  }
  static void drop_front_send_time(SingleRing& r) { r.send_times_.pop_front(); }
};

}  // namespace totem::srp

namespace totem::harness {
namespace {

ClusterConfig fast_cluster() {
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.srp.token_loss_timeout = Duration{100'000};
  cfg.srp.join_interval = Duration{10'000};
  cfg.srp.consensus_timeout = Duration{100'000};
  cfg.srp.commit_timeout = Duration{100'000};
  return cfg;
}

std::uint64_t delivery_samples(const api::Node& node) {
  const auto snap = node.metrics().snapshot();
  const HistogramSnapshot* h = snap.find_histogram("srp.delivery_latency_us");
  return h ? h->count : 0;
}

// The audit: fragmented sends queued on one ring, a forced ring transition
// (node crash + rejoin) while they are in flight, more sends on the new
// ring — alignment must hold end to end, so the counter never fires.
TEST(SendTimeDesync, FragmentedSendsAcrossRingTransitionsStayAligned) {
  SimCluster cluster(fast_cluster());
  cluster.start_all();
  cluster.run_for(Duration{300'000});

  // ~3 fragments per message; enough of them that some are still queued
  // when the ring tears down.
  const Bytes big(4'000, std::byte{0x5A});
  for (int i = 0; i < 12; ++i) (void)cluster.node(0).send(big);
  cluster.run_for(Duration{20'000});  // some broadcast, some still queued

  cluster.crash(3);
  for (int i = 0; i < 4; ++i) (void)cluster.node(0).send(big);  // mid-Gather
  cluster.run_for(Duration{1'500'000});
  cluster.reconnect(3);
  cluster.run_for(Duration{2'000'000});
  for (int i = 0; i < 4; ++i) (void)cluster.node(0).send(big);
  cluster.run_for(Duration{1'000'000});

  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    EXPECT_EQ(cluster.node(i).ring().stats().send_time_desync, 0u)
        << "node " << i << ": send_times_ desynced from send_queue_";
  }
  EXPECT_GT(delivery_samples(cluster.node(0)), 0u)
      << "aligned timestamps must produce latency samples";
}

// The regression: a missing timestamp (induced via the test peer) must bump
// the counter and skip the histogram sample — never fabricate one.
TEST(SendTimeDesync, MissingTimestampIsCountedNotFabricated) {
  SimCluster cluster(fast_cluster());
  cluster.start_all();
  cluster.run_for(Duration{300'000});

  auto& ring = cluster.node(0).ring();
  const std::uint64_t samples_before = delivery_samples(cluster.node(0));

  ASSERT_TRUE(cluster.node(0).send(Bytes(64, std::byte{0x42})).is_ok());
  ASSERT_EQ(srp::SingleRingTestPeer::send_time_count(ring), 1u);
  srp::SingleRingTestPeer::drop_front_send_time(ring);  // induce the desync

  cluster.run_for(Duration{500'000});

  EXPECT_GE(ring.stats().send_time_desync, 1u);
  EXPECT_EQ(delivery_samples(cluster.node(0)), samples_before)
      << "the slipped message must not contribute a fabricated latency sample";
  // The message itself is unharmed — accounting degraded, delivery didn't.
  bool delivered = false;
  for (const auto& d : cluster.deliveries(0)) {
    if (d.origin == 0 && d.payload_size == 64) delivered = true;
  }
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace totem::harness

// Tests for the integrity and safe-delivery features: the per-packet CRC
// (standing in for the Ethernet frame check sequence) and the safe-delivery
// watermark (Totem SRP's all-nodes-have-it guarantee).
#include <gtest/gtest.h>

#include "common/crc32.h"
#include "sim/simulator.h"
#include "srp/single_ring.h"
#include "srp/wire.h"
#include "testing/fake_replicator.h"

namespace totem::srp {
namespace {

using testing::FakeReplicator;

// ---------------------------------------------------------------------------
// Packet CRC

wire::Token sample_token() {
  wire::Token t;
  t.ring = RingId{1, 4};
  t.sender = 2;
  t.seq = 77;
  t.aru = 70;
  t.rotation = 9;
  t.rtr = {71, 73};
  return t;
}

TEST(WireCrc, IntactPacketsParse) {
  EXPECT_TRUE(wire::parse_token(wire::serialize_token(sample_token())).is_ok());
}

TEST(WireCrc, AnySingleByteFlipIsDetected) {
  const Bytes pkt = wire::serialize_token(sample_token());
  for (std::size_t i = 0; i < pkt.size(); ++i) {
    Bytes mangled = pkt;
    mangled[i] ^= std::byte{0x01};
    auto parsed = wire::parse_token(mangled);
    EXPECT_FALSE(parsed.is_ok()) << "flip at byte " << i << " undetected";
    EXPECT_EQ(parsed.status().code(), StatusCode::kMalformedPacket);
  }
}

TEST(WireCrc, MessagePacketFlipDetected) {
  wire::PacketHeader h{wire::PacketType::kRegular, 3, RingId{1, 4}};
  std::vector<wire::MessageEntry> entries(1);
  entries[0].seq = 5;
  entries[0].origin = 3;
  entries[0].payload = Bytes(200, std::byte{0x7E});
  Bytes pkt = wire::serialize_regular(h, entries);
  pkt[pkt.size() / 2] ^= std::byte{0x80};  // flip payload byte
  EXPECT_FALSE(wire::parse_messages(pkt).is_ok());
  EXPECT_FALSE(wire::peek(pkt).is_ok()) << "peek must verify too";
}

TEST(WireCrc, JoinAndCommitProtected) {
  wire::JoinMessage j;
  j.sender = 4;
  j.proc_set = {1, 4};
  Bytes jp = wire::serialize_join(j);
  jp.back() ^= std::byte{0x10};
  EXPECT_FALSE(wire::parse_join(jp).is_ok());

  wire::CommitToken c;
  c.new_ring = RingId{1, 8};
  wire::CommitMember member;
  member.node = 1;
  c.members.push_back(member);
  Bytes cp = wire::serialize_commit(c);
  cp[wire::kPacketHeaderSize] ^= std::byte{0x10};
  EXPECT_FALSE(wire::parse_commit(cp).is_ok());
}

TEST(WireCrc, CrcFieldLivesAtDocumentedOffset) {
  // Zeroing the CRC field then recomputing must reproduce the stored value.
  const Bytes pkt = wire::serialize_token(sample_token());
  ByteReader r(BytesView(pkt).subspan(wire::kCrcOffset, 4));
  const std::uint32_t stored = r.u32().value();
  totem::Crc32 crc;
  crc.update(BytesView(pkt).subspan(0, wire::kCrcOffset));
  crc.update_zeros(4);
  crc.update(BytesView(pkt).subspan(wire::kCrcOffset + 4));
  EXPECT_EQ(stored, crc.value());
}

TEST(CrcStreaming, MatchesOneShot) {
  const Bytes data = to_bytes("the totem redundant ring protocol, ICDCS 2002");
  totem::Crc32 streaming;
  streaming.update(BytesView(data).subspan(0, 10));
  streaming.update(BytesView(data).subspan(10));
  EXPECT_EQ(streaming.value(), crc32(data));
}

TEST(CrcStreaming, UpdateZerosEquivalentToRealZeros) {
  Bytes with_zeros(32, std::byte{0});
  with_zeros[0] = std::byte{0xAA};
  totem::Crc32 a;
  a.update(BytesView(with_zeros).subspan(0, 1));
  a.update_zeros(31);
  EXPECT_EQ(a.value(), crc32(with_zeros));
}

// ---------------------------------------------------------------------------
// Safe-delivery watermark

struct SafeFixture : ::testing::Test {
  sim::Simulator sim;
  FakeReplicator rep;
  std::unique_ptr<SingleRing> ring;
  std::vector<SeqNum> watermarks;

  void build() {
    Config cfg;
    cfg.node_id = 1;
    cfg.initial_members = {1, 2, 3};
    cfg.token_loss_timeout = Duration{10'000'000};
    ring = std::make_unique<SingleRing>(sim, rep, cfg);
    ring->set_safe_watermark_handler([this](SeqNum s) { watermarks.push_back(s); });
    ring->start();
    sim.run_for(Duration{1});
  }

  void cycle_token() {
    Bytes tok = rep.tokens.back().data;
    rep.inject_token(tok);
  }
};

TEST_F(SafeFixture, WatermarkNeedsTwoRotationsAtHighAru) {
  build();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring->send(Bytes(8, std::byte{1})).is_ok());
  cycle_token();  // broadcasts 1..3, token.aru = 3 (first rotation)
  EXPECT_TRUE(watermarks.empty()) << "one rotation is not enough";
  EXPECT_EQ(ring->safe_up_to(), 0u);
  cycle_token();  // aru = 3 seen twice
  ASSERT_EQ(watermarks.size(), 1u);
  EXPECT_EQ(watermarks[0], 3u);
  EXPECT_EQ(ring->safe_up_to(), 3u);
}

TEST_F(SafeFixture, WatermarkMonotonic) {
  build();
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(ring->send(Bytes(8, std::byte{1})).is_ok());
  cycle_token();
  cycle_token();
  for (int i = 0; i < 2; ++i) ASSERT_TRUE(ring->send(Bytes(8, std::byte{1})).is_ok());
  cycle_token();
  cycle_token();
  ASSERT_GE(watermarks.size(), 2u);
  for (std::size_t i = 1; i < watermarks.size(); ++i) {
    EXPECT_GT(watermarks[i], watermarks[i - 1]);
  }
  EXPECT_EQ(watermarks.back(), 4u);
}

TEST_F(SafeFixture, LaggingNodeHoldsWatermarkBack) {
  build();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring->send(Bytes(8, std::byte{1})).is_ok());
  cycle_token();
  // Another node lowers the aru to 1 — only seq 1 can ever become safe.
  wire::Token t = rep.last_token();
  t.rotation += 1;
  t.aru = 1;
  t.aru_id = 3;
  rep.inject_token(wire::serialize_token(t));
  EXPECT_LE(ring->safe_up_to(), 1u);
}

}  // namespace
}  // namespace totem::srp

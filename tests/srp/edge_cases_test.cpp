// Edge-case tests for the SRP operational machinery: request-list caps,
// multi-packet retransmission bursts, queuing across membership states,
// fragment-stream resynchronization, and defensive handling of hostile
// token contents.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "srp/single_ring.h"
#include "testing/fake_replicator.h"

namespace totem::srp {
namespace {

using testing::FakeReplicator;

struct EdgeFixture : ::testing::Test {
  sim::Simulator sim;
  FakeReplicator rep;
  std::unique_ptr<SingleRing> ring;
  std::vector<std::pair<NodeId, Bytes>> delivered;

  Config base_config() {
    Config cfg;
    cfg.node_id = 1;
    cfg.initial_members = {1, 2, 3};
    cfg.token_loss_timeout = Duration{10'000'000};
    return cfg;
  }

  void build(Config cfg) {
    ring = std::make_unique<SingleRing>(sim, rep, cfg);
    ring->set_deliver_handler([this](const DeliveredMessage& m) {
      delivered.emplace_back(m.origin, Bytes(m.payload.begin(), m.payload.end()));
    });
    ring->start();
    sim.run_for(Duration{1});
  }

  wire::Token next_token(std::function<void(wire::Token&)> mutate = {}) {
    auto t = srp::wire::parse_token(rep.tokens.back().data).value();
    t.rotation += 1;
    if (mutate) mutate(t);
    return t;
  }
};

TEST_F(EdgeFixture, RtrRequestsCappedAtLimit) {
  Config cfg = base_config();
  cfg.rtr_limit = 10;
  build(cfg);
  // Token claims 100 messages we never saw.
  wire::Token t = next_token([](wire::Token& tok) {
    tok.seq = 100;
    tok.aru = 100;
    tok.aru_id = kInvalidNode;
  });
  rep.inject_token(wire::serialize_token(t));
  EXPECT_EQ(wire::parse_token(rep.tokens.back().data).value().rtr.size(), 10u);
}

TEST_F(EdgeFixture, RtrRequestsExtendAsEarlierOnesAreServed) {
  Config cfg = base_config();
  cfg.rtr_limit = 5;
  build(cfg);
  wire::Token t = next_token([](wire::Token& tok) {
    tok.seq = 20;
    tok.aru = 20;
    tok.aru_id = kInvalidNode;
  });
  rep.inject_token(wire::serialize_token(t));
  EXPECT_EQ(wire::parse_token(rep.tokens.back().data).value().rtr,
            (std::vector<SeqNum>{1, 2, 3, 4, 5}));

  // Messages 1..5 arrive (retransmitted); next rotation requests 6..10.
  wire::PacketHeader h{wire::PacketType::kRetransmit, 2, RingId{1, 4}};
  std::vector<wire::MessageEntry> entries(5);
  for (int i = 0; i < 5; ++i) {
    entries[i].seq = 1 + i;
    entries[i].origin = 2;
    entries[i].payload = Bytes(4, std::byte{1});
  }
  rep.inject_message(wire::serialize_retransmit(h, entries));
  wire::Token t2 = next_token([](wire::Token& tok) { tok.rtr.clear(); });
  rep.inject_token(wire::serialize_token(t2));
  EXPECT_EQ(wire::parse_token(rep.tokens.back().data).value().rtr,
            (std::vector<SeqNum>{6, 7, 8, 9, 10}));
}

TEST_F(EdgeFixture, LargeRetransmissionBurstSplitsIntoMultiplePackets) {
  build(base_config());
  // We hold 6 large messages from node 2.
  wire::PacketHeader h{wire::PacketType::kRetransmit, 2, RingId{1, 4}};
  std::vector<wire::MessageEntry> entries(6);
  for (int i = 0; i < 6; ++i) {
    entries[i].seq = 1 + i;
    entries[i].origin = 2;
    entries[i].payload = Bytes(600, std::byte{9});
  }
  // Inject as three 2-message packets (each fits).
  for (int p = 0; p < 3; ++p) {
    std::vector<wire::MessageEntry> two = {entries[2 * p], entries[2 * p + 1]};
    rep.inject_message(wire::serialize_retransmit(h, two));
  }
  // A token requests all six: 6 x (19+600) exceeds one body — must split.
  wire::Token t = next_token([](wire::Token& tok) {
    tok.seq = 6;
    tok.aru = 0;
    tok.aru_id = 3;
    tok.rtr = {1, 2, 3, 4, 5, 6};
  });
  rep.inject_token(wire::serialize_token(t));
  ASSERT_GE(rep.broadcasts.size(), 3u);
  std::size_t total = 0;
  for (const auto& b : rep.broadcasts) {
    EXPECT_LE(b.size(), wire::kPacketHeaderSize + wire::kMaxBody);
    auto parsed = wire::parse_messages(b);
    ASSERT_TRUE(parsed.is_ok());
    total += parsed.value().entries.size();
  }
  EXPECT_EQ(total, 6u);
  EXPECT_TRUE(wire::parse_token(rep.tokens.back().data).value().rtr.empty());
}

TEST_F(EdgeFixture, SendDuringGatherQueuesAndFlushesAfterReformation) {
  Config cfg = base_config();
  cfg.node_id = 2;  // non-leader, will lose the token
  cfg.token_loss_timeout = Duration{50'000};
  cfg.join_interval = Duration{10'000};
  cfg.consensus_timeout = Duration{50'000};
  build(cfg);
  sim.run_for(Duration{60'000});
  ASSERT_EQ(ring->state(), SingleRing::State::kGather);
  ASSERT_TRUE(ring->send(to_bytes("queued-in-gather")).is_ok());
  EXPECT_EQ(ring->send_queue_depth(), 1u);
  // The node eventually forms a singleton ring and flushes the queue.
  sim.run_for(Duration{2'000'000});
  ASSERT_EQ(ring->state(), SingleRing::State::kOperational);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(totem::to_string(delivered[0].second), "queued-in-gather");
}

TEST_F(EdgeFixture, HostileTokenWithAbsurdAruIsClamped) {
  build(base_config());
  // aru beyond seq (cannot happen legitimately): our update lowers it to
  // our own aru rather than propagating nonsense.
  wire::Token t = next_token([](wire::Token& tok) {
    tok.seq = 0;
    tok.aru = 1'000'000;
    tok.aru_id = kInvalidNode;
  });
  rep.inject_token(wire::serialize_token(t));
  EXPECT_EQ(wire::parse_token(rep.tokens.back().data).value().aru, 0u);
}

TEST_F(EdgeFixture, RequestsBelowEveryonesDeliveryPointAreDropped) {
  build(base_config());
  // We delivered 1..3 and the ring discarded them (aru'd twice).
  wire::PacketHeader h{wire::PacketType::kRegular, 2, RingId{1, 4}};
  std::vector<wire::MessageEntry> entries(3);
  for (int i = 0; i < 3; ++i) {
    entries[i].seq = 1 + i;
    entries[i].origin = 2;
    entries[i].payload = Bytes(4, std::byte{1});
  }
  rep.inject_message(wire::serialize_regular(h, entries));
  rep.inject_token(wire::serialize_token(next_token([](wire::Token& tok) {
    tok.seq = 3;
    tok.aru = 3;
    tok.aru_id = kInvalidNode;
  })));
  rep.inject_token(wire::serialize_token(next_token()));
  EXPECT_EQ(ring->store_size(), 0u);

  // A (stale/hostile) request for seq 1 arrives after the discard: it must
  // not circulate forever.
  rep.inject_token(wire::serialize_token(next_token([](wire::Token& tok) {
    tok.rtr = {1};
  })));
  EXPECT_TRUE(wire::parse_token(rep.tokens.back().data).value().rtr.empty());
}

TEST_F(EdgeFixture, FragmentStreamResynchronizesAfterMidStreamStart) {
  build(base_config());
  // Delivery stream begins mid-fragment (possible after a lossy membership
  // change): fragment 1/2 with no fragment 0 — dropped; the next complete
  // message delivers normally.
  wire::PacketHeader h{wire::PacketType::kRetransmit, 2, RingId{1, 4}};
  std::vector<wire::MessageEntry> entries(2);
  entries[0].seq = 1;
  entries[0].origin = 2;
  entries[0].flags = wire::MessageEntry::kFlagFragment;
  entries[0].frag_index = 1;  // stream starts at the SECOND fragment
  entries[0].frag_count = 2;
  entries[0].payload = to_bytes("tail");
  entries[1].seq = 2;
  entries[1].origin = 2;
  entries[1].payload = to_bytes("whole");
  rep.inject_message(wire::serialize_retransmit(h, entries));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(totem::to_string(delivered[0].second), "whole");
}

TEST_F(EdgeFixture, BacklogReflectsQueueAndClearsWhenDrained) {
  Config cfg = base_config();
  cfg.max_messages_per_visit = 2;
  cfg.window_size = 4;
  build(cfg);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring->send(Bytes(4, std::byte{1})).is_ok());
  rep.inject_token(wire::serialize_token(next_token()));
  EXPECT_EQ(wire::parse_token(rep.tokens.back().data).value().backlog, 3u);
  rep.inject_token(wire::serialize_token(next_token()));
  EXPECT_EQ(wire::parse_token(rep.tokens.back().data).value().backlog, 1u);
  rep.inject_token(wire::serialize_token(next_token()));
  EXPECT_EQ(wire::parse_token(rep.tokens.back().data).value().backlog, 0u);
  EXPECT_EQ(ring->send_queue_depth(), 0u);
}

TEST_F(EdgeFixture, ZeroLengthAndMaxLengthPayloadsCoexistInOnePacket) {
  build(base_config());
  ASSERT_TRUE(ring->send({}).is_ok());
  ASSERT_TRUE(ring->send(Bytes(64, std::byte{2})).is_ok());
  ASSERT_TRUE(ring->send({}).is_ok());
  rep.inject_token(wire::serialize_token(next_token()));
  ASSERT_EQ(rep.broadcasts.size(), 1u);
  auto parsed = wire::parse_messages(rep.broadcasts[0]);
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed.value().entries.size(), 3u);
  EXPECT_TRUE(parsed.value().entries[0].payload.empty());
  EXPECT_EQ(parsed.value().entries[1].payload.size(), 64u);
  ASSERT_EQ(delivered.size(), 3u);
}

TEST_F(EdgeFixture, TokenRetentionStopsOnNewerToken) {
  Config cfg = base_config();
  cfg.token_retention_interval = Duration{4'000};
  build(cfg);
  ASSERT_EQ(rep.tokens.size(), 1u);
  sim.run_for(Duration{5'000});
  EXPECT_GE(rep.tokens.size(), 2u);  // retention resent at least once
  // The next rotation's token arrives: retention of the old one must stop.
  rep.inject_token(wire::serialize_token(next_token()));
  const std::size_t count = rep.tokens.size();
  // Now the NEW forwarded token is retained, but it too stops once a newer
  // token arrives; drain one retention period then supersede again.
  rep.inject_token(wire::serialize_token(next_token()));
  const std::size_t count2 = rep.tokens.size();
  EXPECT_EQ(count2, count + 1);  // exactly the forward, no stale resends
}

}  // namespace
}  // namespace totem::srp

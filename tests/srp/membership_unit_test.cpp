// Wire-level unit tests for the membership state machine: a single
// SingleRing instance driven through Gather / Commit / Recovery by hand-
// crafted join messages and commit tokens via the fake replicator. The
// multi-node end-to-end behaviour is covered by integration/membership_test;
// these tests pin down the exact packets the state machine emits and
// accepts.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "srp/single_ring.h"
#include "testing/fake_replicator.h"

namespace totem::srp {
namespace {

using testing::FakeReplicator;

struct MembershipFixture : ::testing::Test {
  sim::Simulator sim;
  FakeReplicator rep;
  std::unique_ptr<SingleRing> ring;
  std::vector<MembershipView> views;
  std::vector<std::pair<NodeId, Bytes>> delivered;

  Config config(NodeId id) {
    Config cfg;
    cfg.node_id = id;
    cfg.initial_members = {1, 2, 3};
    cfg.token_loss_timeout = Duration{100'000};
    // A wide gather window (grace = 2 * join_interval) so tests can inject
    // joins before the lone node concludes it is a singleton.
    cfg.join_interval = Duration{50'000};
    cfg.consensus_timeout = Duration{100'000};
    cfg.commit_timeout = Duration{100'000};
    return cfg;
  }

  void build(Config cfg) {
    ring = std::make_unique<SingleRing>(sim, rep, cfg);
    ring->set_membership_handler([this](const MembershipView& v) { views.push_back(v); });
    ring->set_deliver_handler([this](const DeliveredMessage& m) {
      delivered.emplace_back(m.origin, Bytes(m.payload.begin(), m.payload.end()));
    });
    ring->start();
    sim.run_for(Duration{1});
  }

  /// All join messages broadcast so far, parsed.
  std::vector<wire::JoinMessage> sent_joins() {
    std::vector<wire::JoinMessage> out;
    for (const auto& b : rep.broadcasts) {
      auto info = wire::peek(b);
      if (info.is_ok() && info.value().type == wire::PacketType::kJoin) {
        out.push_back(wire::parse_join(b).value());
      }
    }
    return out;
  }

  /// All commit tokens unicast so far, parsed.
  std::vector<std::pair<NodeId, wire::CommitToken>> sent_commits() {
    std::vector<std::pair<NodeId, wire::CommitToken>> out;
    for (const auto& t : rep.tokens) {
      auto info = wire::peek(t.data);
      if (info.is_ok() && info.value().type == wire::PacketType::kCommitToken) {
        out.emplace_back(t.dest, wire::parse_commit(t.data).value());
      }
    }
    return out;
  }

  void inject_join(NodeId sender, std::vector<NodeId> proc, std::vector<NodeId> fail = {},
                   std::uint64_t ring_seq = 4) {
    wire::JoinMessage j;
    j.sender = sender;
    j.proc_set = std::move(proc);
    j.fail_set = std::move(fail);
    j.ring_seq = ring_seq;
    rep.inject_message(wire::serialize_join(j));
  }
};

TEST_F(MembershipFixture, TokenLossBroadcastsJoinWithSelfOnly) {
  build(config(2));  // non-leader: never gets the token
  sim.run_for(Duration{150'000});
  ASSERT_EQ(ring->state(), SingleRing::State::kGather);
  auto joins = sent_joins();
  ASSERT_FALSE(joins.empty());
  EXPECT_EQ(joins[0].sender, 2u);
  EXPECT_EQ(joins[0].proc_set, (std::vector<NodeId>{2}));
  EXPECT_TRUE(joins[0].fail_set.empty());
  EXPECT_EQ(joins[0].ring_seq, 4u) << "remembers the ring it fell off";
}

TEST_F(MembershipFixture, JoinsRebroadcastPeriodically) {
  build(config(2));
  sim.run_for(Duration{180'000});
  EXPECT_GE(sent_joins().size(), 2u);
}

TEST_F(MembershipFixture, MergesProcSetsAndRebroadcasts) {
  build(config(2));
  sim.run_for(Duration{150'000});
  const std::size_t before = sent_joins().size();
  inject_join(3, {3, 5});
  auto joins = sent_joins();
  ASSERT_GT(joins.size(), before) << "changed proc set must trigger rebroadcast";
  EXPECT_EQ(joins.back().proc_set, (std::vector<NodeId>{2, 3, 5}));
}

TEST_F(MembershipFixture, RepresentativeEmitsCommitTokenOnConsensus) {
  build(config(2));
  sim.run_for(Duration{150'000});  // gather with proc={2}
  // Node 3 agrees on proc={2,3}; node 2 (us) is the representative.
  inject_join(3, {2, 3});
  sim.run_for(Duration{60'000});  // grace period passes; consensus evaluates
  auto commits = sent_commits();
  ASSERT_GE(commits.size(), 1u);
  // Any further copies are retention resends of the SAME commit token.
  for (std::size_t i = 1; i < commits.size(); ++i) {
    EXPECT_EQ(commits[i].first, commits[0].first);
    EXPECT_EQ(commits[i].second.hop, commits[0].second.hop);
  }
  EXPECT_EQ(commits[0].first, 3u) << "commit goes to the next member";
  const wire::CommitToken& c = commits[0].second;
  EXPECT_EQ(c.new_ring.representative, 2u);
  EXPECT_GT(c.new_ring.ring_seq, 4u);
  EXPECT_EQ(c.new_ring.ring_seq % 4, 0u) << "committed rings advance by 4";
  ASSERT_EQ(c.members.size(), 2u);
  EXPECT_EQ(c.members[0].node, 2u);
  EXPECT_TRUE(c.members[0].filled);
  EXPECT_EQ(c.members[1].node, 3u);
  EXPECT_FALSE(c.members[1].filled);
  EXPECT_EQ(c.hop, 1u);
  EXPECT_EQ(ring->state(), SingleRing::State::kCommit);
}

TEST_F(MembershipFixture, NonRepresentativeFillsAndForwardsCommit) {
  build(config(3));  // node 3: never the representative of {2,3}
  sim.run_for(Duration{150'000});
  inject_join(2, {2, 3});
  sim.run_for(Duration{60'000});

  // Representative 2's first-pass commit token arrives.
  wire::CommitToken c;
  c.new_ring = RingId{2, 8};
  c.sender = 2;
  c.hop = 1;
  c.members.resize(2);
  c.members[0].node = 2;
  c.members[0].old_ring = RingId{1, 4};
  c.members[0].my_aru = 7;
  c.members[0].high_seq = 9;
  c.members[0].filled = true;
  c.members[1].node = 3;
  rep.inject_message(wire::serialize_commit(c));

  EXPECT_EQ(ring->state(), SingleRing::State::kCommit);
  auto commits = sent_commits();
  ASSERT_GE(commits.size(), 1u);
  EXPECT_EQ(commits[0].first, 2u) << "ring of two: forwards back to the rep";
  EXPECT_EQ(commits[0].second.hop, 2u);
  EXPECT_TRUE(commits[0].second.members[1].filled) << "our slot now carries our state";
  EXPECT_EQ(commits[0].second.members[1].old_ring, (RingId{1, 4}));
}

TEST_F(MembershipFixture, SecondPassEntersRecoveryAndInstalls) {
  build(config(3));
  sim.run_for(Duration{150'000});
  inject_join(2, {2, 3});
  sim.run_for(Duration{60'000});

  // First pass.
  wire::CommitToken c;
  c.new_ring = RingId{2, 8};
  c.sender = 2;
  c.hop = 1;
  c.members.resize(2);
  c.members[0].node = 2;
  c.members[0].old_ring = RingId{1, 4};
  c.members[0].filled = true;
  c.members[1].node = 3;
  rep.inject_message(wire::serialize_commit(c));
  ASSERT_EQ(ring->state(), SingleRing::State::kCommit);

  // Second pass: everyone's info is in.
  auto first_forward = sent_commits().back().second;
  first_forward.hop = 2;  // completed the first pass
  rep.inject_message(wire::serialize_commit(first_forward));
  EXPECT_EQ(ring->state(), SingleRing::State::kRecovery);
  EXPECT_EQ(ring->ring(), (RingId{2, 8}));
  EXPECT_EQ(ring->members(), (std::vector<NodeId>{2, 3}));

  // An empty recovery (no old messages anywhere). The first token's
  // backlog/aru aggregates are vacuous — nobody else has reported yet — so
  // the node must NOT install off it (premature-install regression).
  wire::Token t;
  t.ring = RingId{2, 8};
  t.sender = 2;
  rep.inject_token(wire::serialize_token(t));
  EXPECT_EQ(ring->state(), SingleRing::State::kRecovery);

  // The token returns after a full rotation: now backlog == 0 and
  // aru == seq reflect every member, and the ring installs.
  t.rotation = 1;
  rep.inject_token(wire::serialize_token(t));
  EXPECT_EQ(ring->state(), SingleRing::State::kOperational);
  ASSERT_GE(views.size(), 2u);
  EXPECT_EQ(views.back().ring, (RingId{2, 8}));
  EXPECT_EQ(views.back().members, (std::vector<NodeId>{2, 3}));
}

TEST_F(MembershipFixture, RecoveryRebroadcastsOldRingMessages) {
  // Node 3 holds old-ring messages 1..3; the commit reveals node 2's aru is
  // only 1 — messages 2..3 must be rebroadcast encapsulated.
  build(config(3));
  // Receive three messages on the assumed ring {1,2,3}.
  wire::PacketHeader h{wire::PacketType::kRegular, 1, RingId{1, 4}};
  std::vector<wire::MessageEntry> entries(3);
  for (int i = 0; i < 3; ++i) {
    entries[i].seq = 1 + i;
    entries[i].origin = 1;
    entries[i].payload = to_bytes("old-" + std::to_string(i + 1));
  }
  rep.inject_message(wire::serialize_regular(h, entries));
  ASSERT_EQ(delivered.size(), 3u);

  sim.run_for(Duration{150'000});  // token loss (node 1 died) -> gather
  inject_join(2, {2, 3});
  sim.run_for(Duration{60'000});

  wire::CommitToken c;
  c.new_ring = RingId{2, 8};
  c.sender = 2;
  c.hop = 1;
  c.members.resize(2);
  c.members[0].node = 2;
  c.members[0].old_ring = RingId{1, 4};
  c.members[0].my_aru = 1;  // node 2 is missing 2..3
  c.members[0].high_seq = 3;
  c.members[0].filled = true;
  c.members[1].node = 3;
  rep.inject_message(wire::serialize_commit(c));
  auto fwd = sent_commits().back().second;
  fwd.hop = 2;
  rep.inject_message(wire::serialize_commit(fwd));
  ASSERT_EQ(ring->state(), SingleRing::State::kRecovery);

  // Recovery token arrives: we must rebroadcast old 2..3 as recovered
  // entries on the new ring.
  wire::Token t;
  t.ring = RingId{2, 8};
  t.sender = 2;
  rep.inject_token(wire::serialize_token(t));

  std::vector<wire::RecoveredMessage> recovered;
  for (const auto& b : rep.broadcasts) {
    auto info = wire::peek(b);
    if (!info.is_ok() || info.value().ring != (RingId{2, 8})) continue;
    auto parsed = wire::parse_messages(b);
    if (!parsed.is_ok()) continue;
    for (const auto& e : parsed.value().entries) {
      if (e.is_recovered()) {
        recovered.push_back(wire::parse_recovered(e.payload).value());
      }
    }
  }
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered[0].old_ring, (RingId{1, 4}));
  EXPECT_EQ(recovered[0].original.seq, 2u);
  EXPECT_EQ(recovered[1].original.seq, 3u);
  EXPECT_EQ(totem::to_string(recovered[0].original.payload), "old-2");
  // And we never re-deliver messages we had already delivered.
  EXPECT_EQ(delivered.size(), 3u);
}

TEST_F(MembershipFixture, CommitTimeoutRestartsGather) {
  build(config(2));
  sim.run_for(Duration{150'000});
  inject_join(3, {2, 3});
  sim.run_for(Duration{60'000});
  ASSERT_EQ(ring->state(), SingleRing::State::kCommit);
  // The commit token we sent to node 3 vanishes; after commit_timeout we
  // must re-gather rather than hang.
  sim.run_for(Duration{150'000});
  EXPECT_EQ(ring->state(), SingleRing::State::kGather);
}

TEST_F(MembershipFixture, CommitTokenExcludingUsIsIgnored) {
  build(config(2));
  sim.run_for(Duration{150'000});
  ASSERT_EQ(ring->state(), SingleRing::State::kGather);
  wire::CommitToken c;
  c.new_ring = RingId{3, 8};
  c.sender = 3;
  c.hop = 1;
  c.members.resize(1);
  c.members[0].node = 3;  // we are not in it
  rep.inject_message(wire::serialize_commit(c));
  EXPECT_EQ(ring->state(), SingleRing::State::kGather);
  EXPECT_TRUE(sent_commits().empty());
}

TEST_F(MembershipFixture, OperationalJoinFromStrangerTriggersGather) {
  build(config(1));  // leader, operational
  ASSERT_EQ(ring->state(), SingleRing::State::kOperational);
  inject_join(9, {9}, {}, 0);
  EXPECT_EQ(ring->state(), SingleRing::State::kGather);
  // The stranger is in our merged proc set.
  EXPECT_EQ(sent_joins().back().proc_set, (std::vector<NodeId>{1, 9}));
}

TEST_F(MembershipFixture, StaleJoinFromMemberIgnoredWhileOperational) {
  build(config(1));
  // A member's join tagged with a ring_seq BELOW ours is a leftover from the
  // formation of the current ring.
  inject_join(2, {1, 2, 3}, {}, 3);
  EXPECT_EQ(ring->state(), SingleRing::State::kOperational);
}

TEST_F(MembershipFixture, ConsensusTimeoutFailsSilentNodes) {
  build(config(2));
  sim.run_for(Duration{150'000});
  inject_join(3, {2, 3, 4});  // 4 exists per node 3, but 4 never speaks
  sim.run_for(Duration{120'000});  // past the first consensus timeout
  // 4 lands in the fail set; node 3 (which did speak) does not.
  auto joins = sent_joins();
  EXPECT_EQ(joins.back().fail_set, (std::vector<NodeId>{4}));
}

TEST_F(MembershipFixture, ForeignRingTrafficTriggersMerge) {
  build(config(1));
  ASSERT_EQ(ring->state(), SingleRing::State::kOperational);
  // Regular traffic from a ring we were never part of (a healed partition).
  wire::PacketHeader h{wire::PacketType::kRegular, 7, RingId{7, 12}};
  std::vector<wire::MessageEntry> entries(1);
  entries[0].seq = 1;
  entries[0].origin = 7;
  entries[0].payload = to_bytes("foreign");
  rep.inject_message(wire::serialize_regular(h, entries));
  EXPECT_EQ(ring->state(), SingleRing::State::kGather);
  EXPECT_TRUE(delivered.empty()) << "foreign-ring payloads are never delivered";
}

TEST_F(MembershipFixture, OwnOldRingTrafficDoesNotTriggerMerge) {
  build(config(1));
  // Traffic tagged with our CURRENT ring id but... use the recent-ring path:
  // packets from the ring we assumed at start must never be "foreign".
  wire::PacketHeader h{wire::PacketType::kRegular, 2, RingId{1, 4}};
  std::vector<wire::MessageEntry> entries(1);
  entries[0].seq = 1;
  entries[0].origin = 2;
  entries[0].payload = to_bytes("ours");
  rep.inject_message(wire::serialize_regular(h, entries));
  EXPECT_EQ(ring->state(), SingleRing::State::kOperational);
  EXPECT_EQ(delivered.size(), 1u);
}

}  // namespace
}  // namespace totem::srp

// Unit tests for the Totem SRP operational protocol (paper §2), driven
// through a fake replicator: token processing, packing, flow control,
// retransmission, retention, ordering, fragmentation.
#include "srp/single_ring.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "testing/fake_replicator.h"

namespace totem::srp {
namespace {

using testing::FakeReplicator;

struct RingFixture : ::testing::Test {
  sim::Simulator sim;
  FakeReplicator rep;
  std::unique_ptr<SingleRing> ring;
  std::vector<std::pair<NodeId, Bytes>> delivered;

  Config base_config() {
    Config cfg;
    cfg.node_id = 1;
    cfg.initial_members = {1, 2, 3};
    cfg.token_loss_timeout = Duration{10'000'000};  // keep membership out of
    cfg.token_retention_interval = Duration{4'000};  // unit tests by default
    return cfg;
  }

  void build(Config cfg) {
    ring = std::make_unique<SingleRing>(sim, rep, cfg);
    ring->set_deliver_handler([this](const DeliveredMessage& m) {
      delivered.emplace_back(m.origin, Bytes(m.payload.begin(), m.payload.end()));
    });
    ring->start();
    sim.run_for(Duration{1});  // initial membership view + leader token
  }

  void build() { build(base_config()); }

  /// Feed the last forwarded token back into the ring, as if the other
  /// members processed it without changes.
  void cycle_token() {
    ASSERT_FALSE(rep.tokens.empty());
    Bytes tok = rep.tokens.back().data;
    rep.inject_token(tok);
  }

  Bytes regular_from(NodeId sender, SeqNum first_seq, std::vector<std::size_t> sizes,
                     RingId ring_id = RingId{1, 4}) {
    wire::PacketHeader h{wire::PacketType::kRegular, sender, ring_id};
    std::vector<wire::MessageEntry> entries;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      wire::MessageEntry e;
      e.seq = first_seq + i;
      e.origin = sender;
      e.payload = Bytes(sizes[i], std::byte(static_cast<unsigned char>(first_seq + i)));
      entries.push_back(std::move(e));
    }
    return wire::serialize_regular(h, entries);
  }
};

TEST_F(RingFixture, LeaderInjectsAndForwardsInitialToken) {
  build();
  ASSERT_EQ(rep.tokens.size(), 1u);
  EXPECT_EQ(rep.tokens[0].dest, 2u);  // successor of 1 in {1,2,3}
  const wire::Token t = rep.last_token();
  EXPECT_EQ(t.ring, (RingId{1, 4}));
  EXPECT_EQ(t.seq, 0u);
  EXPECT_EQ(t.rotation, 1u);  // the leader bumps the rotation counter
  EXPECT_EQ(ring->state(), SingleRing::State::kOperational);
}

TEST_F(RingFixture, QueuedMessagesBroadcastOnTokenVisit) {
  Config cfg = base_config();
  build(cfg);
  ASSERT_TRUE(ring->send(to_bytes("alpha")).is_ok());
  ASSERT_TRUE(ring->send(to_bytes("beta")).is_ok());
  cycle_token();
  ASSERT_EQ(rep.broadcasts.size(), 1u);
  auto parsed = wire::parse_messages(rep.broadcasts[0]);
  ASSERT_TRUE(parsed.is_ok());
  ASSERT_EQ(parsed.value().entries.size(), 2u);
  EXPECT_EQ(parsed.value().entries[0].seq, 1u);
  EXPECT_EQ(parsed.value().entries[1].seq, 2u);
  EXPECT_EQ(totem::to_string(parsed.value().entries[0].payload), "alpha");
  const wire::Token t = rep.last_token();
  EXPECT_EQ(t.seq, 2u);
  EXPECT_EQ(t.fcc, 2u);
  EXPECT_EQ(t.aru, 2u);  // we have our own messages
  // Own messages are delivered locally in order.
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(totem::to_string(delivered[0].second), "alpha");
}

TEST_F(RingFixture, PackingRespectsTheFrameLimit) {
  build();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring->send(Bytes(400, std::byte{7})).is_ok());
  }
  cycle_token();
  // 3 x (400+7) + 10 = 1231 fits; the 4th overflows into a second packet.
  ASSERT_EQ(rep.broadcasts.size(), 2u);
  auto p1 = wire::parse_messages(rep.broadcasts[0]);
  auto p2 = wire::parse_messages(rep.broadcasts[1]);
  ASSERT_TRUE(p1.is_ok());
  ASSERT_TRUE(p2.is_ok());
  EXPECT_EQ(p1.value().entries.size(), 3u);
  EXPECT_EQ(p2.value().entries.size(), 1u);
  for (const auto& b : rep.broadcasts) {
    EXPECT_LE(b.size(), wire::kPacketHeaderSize + wire::kMaxBody);
  }
}

TEST_F(RingFixture, TwoSevenHundredByteMessagesShareOneFrame) {
  build();
  ASSERT_TRUE(ring->send(Bytes(700, std::byte{1})).is_ok());
  ASSERT_TRUE(ring->send(Bytes(700, std::byte{2})).is_ok());
  cycle_token();
  ASSERT_EQ(rep.broadcasts.size(), 1u);
  EXPECT_EQ(rep.broadcasts[0].size(), wire::kPacketHeaderSize + wire::kMaxBody);
}

TEST_F(RingFixture, FlowControlCapsPerVisitAndPerRotation) {
  Config cfg = base_config();
  cfg.window_size = 80;
  cfg.max_messages_per_visit = 40;
  build(cfg);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring->send(Bytes(10, std::byte{1})).is_ok());
  }
  cycle_token();
  wire::Token t = rep.last_token();
  EXPECT_EQ(t.seq, 40u);  // per-visit cap
  EXPECT_EQ(t.fcc, 40u);
  EXPECT_EQ(t.backlog, 60u);
  cycle_token();
  t = rep.last_token();
  EXPECT_EQ(t.seq, 80u);  // window minus our own previous contribution
  EXPECT_EQ(t.fcc, 40u);
  EXPECT_EQ(t.backlog, 20u);
}

TEST_F(RingFixture, WindowFullStopsSending) {
  Config cfg = base_config();
  cfg.window_size = 80;
  cfg.max_messages_per_visit = 40;
  build(cfg);
  ASSERT_TRUE(ring->send(Bytes(10, std::byte{1})).is_ok());
  // Craft a token claiming the window is already consumed by others.
  wire::Token t = rep.last_token();
  t.rotation += 1;
  t.fcc = 80;
  rep.inject_token(wire::serialize_token(t));
  EXPECT_TRUE(rep.broadcasts.empty());
  EXPECT_EQ(ring->send_queue_depth(), 1u);
}

TEST_F(RingFixture, DuplicateMessagesDropped) {
  build();
  const Bytes pkt = regular_from(2, 1, {32});
  rep.inject_message(pkt);
  rep.inject_message(pkt);
  EXPECT_EQ(delivered.size(), 1u);
  EXPECT_GE(ring->stats().duplicates_dropped, 1u);
}

TEST_F(RingFixture, OutOfOrderMessagesHeldUntilGapFills) {
  build();
  rep.inject_message(regular_from(2, 2, {16}));
  EXPECT_TRUE(delivered.empty());  // seq 1 missing
  EXPECT_TRUE(ring->any_messages_missing(0));
  rep.inject_message(regular_from(3, 1, {16}));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0].first, 3u);  // seq 1 first
  EXPECT_EQ(delivered[1].first, 2u);
  EXPECT_FALSE(ring->any_messages_missing(0));
}

TEST_F(RingFixture, GapTriggersRetransmitRequestInToken) {
  build();
  // A token arrives claiming 5 messages exist; we have none.
  wire::Token t = rep.last_token();
  t.rotation += 1;
  t.seq = 5;
  t.aru = 5;
  t.aru_id = kInvalidNode;
  rep.inject_token(wire::serialize_token(t));
  const wire::Token fwd = rep.last_token();
  EXPECT_EQ(fwd.rtr, (std::vector<SeqNum>{1, 2, 3, 4, 5}));
  EXPECT_EQ(fwd.aru, 0u) << "aru must drop to our aru";
  EXPECT_EQ(fwd.aru_id, 1u);
  EXPECT_GE(ring->stats().retransmit_requests, 5u);
}

TEST_F(RingFixture, ServicesRetransmissionRequestsFromStore) {
  build();
  rep.inject_message(regular_from(2, 1, {16, 16, 16}));
  ASSERT_EQ(delivered.size(), 3u);
  // Another node requests seq 2.
  wire::Token t = rep.last_token();
  t.rotation += 1;
  t.seq = 3;
  t.aru = 1;
  t.aru_id = 3;
  t.rtr = {2};
  rep.inject_token(wire::serialize_token(t));
  ASSERT_EQ(rep.broadcasts.size(), 1u);
  auto parsed = wire::parse_messages(rep.broadcasts[0]);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().header.type, wire::PacketType::kRetransmit);
  ASSERT_EQ(parsed.value().entries.size(), 1u);
  EXPECT_EQ(parsed.value().entries[0].seq, 2u);
  EXPECT_EQ(parsed.value().entries[0].origin, 2u);
  EXPECT_TRUE(rep.last_token().rtr.empty()) << "request satisfied, removed";
  EXPECT_EQ(ring->stats().retransmissions_sent, 1u);
}

TEST_F(RingFixture, UnsatisfiableRequestStaysInToken) {
  build();
  wire::Token t = rep.last_token();
  t.rotation += 1;
  t.seq = 9;
  t.aru = 0;
  t.aru_id = 2;
  t.rtr = {7};
  rep.inject_token(wire::serialize_token(t));
  const auto& fwd_rtr = rep.last_token().rtr;
  EXPECT_NE(std::find(fwd_rtr.begin(), fwd_rtr.end(), 7u), fwd_rtr.end());
}

TEST_F(RingFixture, TokenRetentionResendsUntilProgressSeen) {
  Config cfg = base_config();
  cfg.token_retention_interval = Duration{4'000};
  build(cfg);
  ASSERT_EQ(rep.tokens.size(), 1u);
  sim.run_for(Duration{9'000});  // two retention periods, no progress
  EXPECT_GE(rep.tokens.size(), 3u);
  EXPECT_EQ(rep.tokens[0].data, rep.tokens[1].data) << "identical retained copy";
  EXPECT_GE(ring->stats().token_retention_resends, 2u);

  // A message with seq greater than the retained token's proves the
  // successor got the token (paper §2): retention stops.
  rep.inject_message(regular_from(2, 1, {8}));
  const std::size_t count = rep.tokens.size();
  sim.run_for(Duration{20'000});
  EXPECT_EQ(rep.tokens.size(), count);
}

TEST_F(RingFixture, DuplicateTokenIgnored) {
  build();
  wire::Token t = rep.last_token();
  t.rotation += 1;
  const Bytes tok = wire::serialize_token(t);
  rep.inject_token(tok);
  const std::size_t forwards = rep.tokens.size();
  rep.inject_token(tok);  // retransmitted copy
  EXPECT_EQ(rep.tokens.size(), forwards);
  EXPECT_GE(ring->stats().duplicate_tokens, 1u);
}

TEST_F(RingFixture, LargeMessageFragmentsAndReassembles) {
  build();
  Bytes big(3000);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = std::byte(i % 256);
  ASSERT_TRUE(ring->send(big).is_ok());
  EXPECT_EQ(ring->send_queue_depth(), 3u);  // ceil(3000 / 1407)
  cycle_token();
  // All three fragments broadcast; locally reassembled on delivery.
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].second, big);
  EXPECT_EQ(ring->stats().messages_broadcast, 3u);
  EXPECT_EQ(ring->stats().messages_delivered, 1u);
}

TEST_F(RingFixture, InterleavedFragmentStreamsReassembleCorrectly) {
  build();
  // Node 2 sends fragments of X interleaved (by seq) with node 3's message.
  wire::PacketHeader h2{wire::PacketType::kRetransmit, 2, RingId{1, 4}};
  std::vector<wire::MessageEntry> entries(3);
  entries[0].seq = 1;
  entries[0].origin = 2;
  entries[0].flags = wire::MessageEntry::kFlagFragment;
  entries[0].frag_index = 0;
  entries[0].frag_count = 2;
  entries[0].payload = to_bytes("part1-");
  entries[1].seq = 2;
  entries[1].origin = 3;
  entries[1].payload = to_bytes("middle");
  entries[2].seq = 3;
  entries[2].origin = 2;
  entries[2].flags = wire::MessageEntry::kFlagFragment;
  entries[2].frag_index = 1;
  entries[2].frag_count = 2;
  entries[2].payload = to_bytes("part2");
  rep.inject_message(wire::serialize_retransmit(h2, entries));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(totem::to_string(delivered[0].second), "middle");     // seq 2 completes first
  EXPECT_EQ(totem::to_string(delivered[1].second), "part1-part2");  // frag completes at seq 3
  EXPECT_EQ(delivered[1].first, 2u);
}

TEST_F(RingFixture, SendQueueBackpressure) {
  Config cfg = base_config();
  cfg.send_queue_limit = 4;
  build(cfg);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring->send(Bytes(8, std::byte{1})).is_ok());
  }
  const Status s = ring->send(Bytes(8, std::byte{1}));
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ring->stats().send_queue_rejects, 1u);
}

TEST_F(RingFixture, OversizedMessageRejected) {
  build();
  // frag_count is u16: payloads above 65535 fragments are refused.
  const std::size_t too_big = (std::size_t{0xFFFF} + 1) * wire::kMaxUnfragmentedPayload + 1;
  Bytes big(too_big, std::byte{0});
  EXPECT_EQ(ring->send(big).code(), StatusCode::kInvalidArgument);
}

TEST_F(RingFixture, StoreDiscardsMessagesSafeAfterTwoRotations) {
  build();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring->send(Bytes(8, std::byte{1})).is_ok());
  cycle_token();
  EXPECT_EQ(ring->store_size(), 3u);
  cycle_token();  // aru=3 seen on two consecutive rotations
  EXPECT_EQ(ring->store_size(), 0u);
}

TEST_F(RingFixture, StoreKeepsMessagesWhileSomeNodeLags) {
  build();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring->send(Bytes(8, std::byte{1})).is_ok());
  cycle_token();
  // Another node lowered the aru to 1: only seq 1 may ever be discarded.
  wire::Token t = rep.last_token();
  t.rotation += 1;
  t.aru = 1;
  t.aru_id = 3;
  rep.inject_token(wire::serialize_token(t));
  EXPECT_GE(ring->store_size(), 2u);
}

TEST_F(RingFixture, StaleRingPacketsIgnored) {
  build();
  rep.inject_message(regular_from(2, 1, {16}, RingId{9, 44}));
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(ring->stats().stale_packets, 1u);
  wire::Token t;
  t.ring = RingId{9, 44};
  t.rotation = 1;
  rep.inject_token(wire::serialize_token(t));
  EXPECT_EQ(ring->stats().stale_packets, 2u);
}

TEST_F(RingFixture, MalformedPacketsCounted) {
  build();
  Bytes garbage(30, std::byte{0x11});
  rep.inject_message(garbage);
  rep.inject_token(garbage);
  EXPECT_EQ(ring->stats().malformed_packets, 2u);
}

TEST_F(RingFixture, AruOwnershipRaisesAfterRecovery) {
  build();
  // We are missing 1..2 of 2: token comes with aru=2, we lower it.
  wire::Token t = rep.last_token();
  t.rotation += 1;
  t.seq = 2;
  t.aru = 2;
  t.aru_id = kInvalidNode;
  rep.inject_token(wire::serialize_token(t));
  EXPECT_EQ(rep.last_token().aru, 0u);
  // Retransmission arrives; next rotation we raise our own aru entry.
  rep.inject_message(regular_from(2, 1, {8, 8}));
  wire::Token t2 = rep.last_token();
  t2.rotation += 1;
  rep.inject_token(wire::serialize_token(t2));
  EXPECT_EQ(rep.last_token().aru, 2u);
}

TEST_F(RingFixture, AnyMessagesMissingUsesTokenSeqHorizon) {
  build();
  EXPECT_FALSE(ring->any_messages_missing(0));
  // The token claims messages exist that we have never seen (passive
  // replication's Fig. 3 scenario).
  EXPECT_TRUE(ring->any_messages_missing(3));
  rep.inject_message(regular_from(2, 1, {8, 8, 8}));
  EXPECT_FALSE(ring->any_messages_missing(3));
}

TEST_F(RingFixture, MembershipViewDeliveredAtStart) {
  bool seen = false;
  Config cfg = base_config();
  ring = std::make_unique<SingleRing>(sim, rep, cfg);
  ring->set_membership_handler([&](const MembershipView& v) {
    seen = true;
    EXPECT_EQ(v.members, (std::vector<NodeId>{1, 2, 3}));
    EXPECT_EQ(v.ring, (RingId{1, 4}));
  });
  ring->start();
  sim.run_for(Duration{1});
  EXPECT_TRUE(seen);
}

TEST_F(RingFixture, NonLeaderWaitsForToken) {
  Config cfg = base_config();
  cfg.node_id = 2;
  ring = std::make_unique<SingleRing>(sim, rep, cfg);
  ring->start();
  sim.run_for(Duration{1'000});
  EXPECT_TRUE(rep.tokens.empty());
  // Token from the leader arrives; we forward to node 3.
  wire::Token t;
  t.ring = RingId{1, 4};
  t.sender = 1;
  t.rotation = 1;
  rep.inject_token(wire::serialize_token(t));
  ASSERT_EQ(rep.tokens.size(), 1u);
  EXPECT_EQ(rep.tokens[0].dest, 3u);
  EXPECT_EQ(rep.last_token().rotation, 1u) << "only the leader bumps rotation";
}

TEST_F(RingFixture, TokenLossStartsGather) {
  Config cfg = base_config();
  cfg.node_id = 2;  // non-leader: nobody will send us the token
  cfg.token_loss_timeout = Duration{50'000};
  ring = std::make_unique<SingleRing>(sim, rep, cfg);
  ring->start();
  sim.run_for(Duration{60'000});
  EXPECT_EQ(ring->state(), SingleRing::State::kGather);
  EXPECT_EQ(ring->stats().token_loss_events, 1u);
  // A join message went out.
  bool saw_join = false;
  for (const auto& b : rep.broadcasts) {
    auto info = wire::peek(b);
    if (info.is_ok() && info.value().type == wire::PacketType::kJoin) saw_join = true;
  }
  EXPECT_TRUE(saw_join);
}

}  // namespace
}  // namespace totem::srp

// Ring-transition regression tests: what happens to partially reassembled
// fragments, the `recovered` delivery flag and the double-failure
// bookkeeping when the ring is torn down mid-message. A single SingleRing
// instance is driven through Gather / Commit / Recovery with hand-crafted
// packets, mirroring membership_unit_test.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "srp/single_ring.h"
#include "testing/fake_replicator.h"

namespace totem::srp {
namespace {

using testing::FakeReplicator;

struct RingTransitionFixture : ::testing::Test {
  struct Rec {
    NodeId origin;
    SeqNum seq;
    std::string payload;
    bool recovered;
  };

  sim::Simulator sim;
  FakeReplicator rep;
  std::unique_ptr<SingleRing> ring;
  std::vector<MembershipView> views;
  std::vector<Rec> delivered;

  Config config(NodeId id) {
    Config cfg;
    cfg.node_id = id;
    cfg.initial_members = {1, 2, 3};
    cfg.token_loss_timeout = Duration{100'000};
    cfg.join_interval = Duration{50'000};
    // Wider than the gather grace window so a test that must wait out the
    // grace period cannot race the singleton-ring consensus fallback.
    cfg.consensus_timeout = Duration{300'000};
    cfg.commit_timeout = Duration{300'000};
    return cfg;
  }

  void build(Config cfg) {
    ring = std::make_unique<SingleRing>(sim, rep, cfg);
    ring->set_membership_handler([this](const MembershipView& v) { views.push_back(v); });
    ring->set_deliver_handler([this](const DeliveredMessage& m) {
      delivered.push_back(Rec{m.origin, m.seq, totem::to_string(m.payload), m.recovered});
    });
    ring->start();
    sim.run_for(Duration{1});
  }

  void inject_join(NodeId sender, std::vector<NodeId> proc, std::vector<NodeId> fail = {},
                   std::uint64_t ring_seq = 4) {
    wire::JoinMessage j;
    j.sender = sender;
    j.proc_set = std::move(proc);
    j.fail_set = std::move(fail);
    j.ring_seq = ring_seq;
    rep.inject_message(wire::serialize_join(j));
  }

  void inject_entry(const RingId& ring_id, NodeId sender, wire::MessageEntry entry) {
    wire::PacketHeader h{wire::PacketType::kRegular, sender, ring_id};
    std::vector<wire::MessageEntry> entries;
    entries.push_back(std::move(entry));
    rep.inject_message(wire::serialize_regular(h, entries));
  }

  static wire::MessageEntry fragment(SeqNum seq, NodeId origin, std::uint16_t index,
                                     std::uint16_t count, const std::string& payload) {
    wire::MessageEntry e;
    e.seq = seq;
    e.origin = origin;
    e.flags = wire::MessageEntry::kFlagFragment;
    e.frag_index = index;
    e.frag_count = count;
    e.payload = to_bytes(payload);
    return e;
  }

  static wire::MessageEntry plain(SeqNum seq, NodeId origin, const std::string& payload) {
    wire::MessageEntry e;
    e.seq = seq;
    e.origin = origin;
    e.payload = to_bytes(payload);
    return e;
  }

  /// Wrap an old-ring entry the way a recovering peer rebroadcasts it.
  static wire::MessageEntry encapsulated(SeqNum new_seq, NodeId rebroadcaster,
                                         const RingId& old_ring,
                                         const wire::MessageEntry& original) {
    wire::MessageEntry e;
    e.seq = new_seq;
    e.origin = rebroadcaster;
    e.flags = wire::MessageEntry::kFlagRecovered;
    e.payload = wire::serialize_recovered(wire::RecoveredMessage{old_ring, original});
    return e;
  }

  std::vector<std::pair<NodeId, wire::CommitToken>> sent_commits() {
    std::vector<std::pair<NodeId, wire::CommitToken>> out;
    for (const auto& t : rep.tokens) {
      auto info = wire::peek(t.data);
      if (info.is_ok() && info.value().type == wire::PacketType::kCommitToken) {
        out.emplace_back(t.dest, wire::parse_commit(t.data).value());
      }
    }
    return out;
  }

  /// Drive node 3 from the assumed ring {1,4} into Recovery with peer 2
  /// (node 1 has crashed). `peer_aru`/`peer_high` describe node 2's
  /// old-ring position carried by the commit token.
  void enter_recovery_with_peer(SeqNum peer_aru, SeqNum peer_high,
                                const RingId& new_ring = RingId{2, 8}) {
    sim.run_for(Duration{150'000});  // token loss -> gather
    ASSERT_EQ(ring->state(), SingleRing::State::kGather);
    inject_join(2, {2, 3});
    sim.run_for(Duration{60'000});  // grace period passes; consensus on {2,3}

    wire::CommitToken c;
    c.new_ring = new_ring;
    c.sender = 2;
    c.hop = 1;
    c.members.resize(2);
    c.members[0].node = 2;
    c.members[0].old_ring = RingId{1, 4};
    c.members[0].my_aru = peer_aru;
    c.members[0].high_seq = peer_high;
    c.members[0].filled = true;
    c.members[1].node = 3;
    rep.inject_message(wire::serialize_commit(c));
    ASSERT_EQ(ring->state(), SingleRing::State::kCommit);

    auto fwd = sent_commits().back().second;
    fwd.hop = 2;
    rep.inject_message(wire::serialize_commit(fwd));
    ASSERT_EQ(ring->state(), SingleRing::State::kRecovery);
  }

  void inject_token(const RingId& ring_id, NodeId sender, std::uint64_t rotation,
                    SeqNum seq, SeqNum aru, bool install = false) {
    wire::Token t;
    t.ring = ring_id;
    t.sender = sender;
    t.rotation = rotation;
    t.seq = seq;
    t.aru = aru;
    t.install = install;
    rep.inject_token(wire::serialize_token(t));
  }

  /// Last token this node forwarded, parsed back from the wire.
  wire::Token last_forwarded_token() {
    for (auto it = rep.tokens.rbegin(); it != rep.tokens.rend(); ++it) {
      auto info = wire::peek(it->data);
      if (info.is_ok() && info.value().type == wire::PacketType::kToken) {
        return wire::parse_token(it->data).value();
      }
    }
    ADD_FAILURE() << "no forwarded token";
    return {};
  }
};

// A fragment buffered on the old ring must not be concatenated with a
// same-origin fragment that survives into the new ring's delivery when the
// intervening fragments were lost with the old ring.
TEST_F(RingTransitionFixture, StaleFragmentStateCannotCorruptRecoveredDelivery) {
  build(config(3));
  // Origin 1 fragments two messages M = AAAA|BBBB (seq 1,2) and
  // M' = CCCC|DDDD (seq 3,4). We receive only M's first and M''s last
  // fragment before the ring dies.
  inject_entry(RingId{1, 4}, 1, fragment(1, 1, 0, 2, "AAAA"));
  inject_entry(RingId{1, 4}, 1, fragment(4, 1, 1, 2, "DDDD"));
  EXPECT_TRUE(delivered.empty());
  EXPECT_TRUE(ring->has_partial_fragments());

  enter_recovery_with_peer(/*peer_aru=*/1, /*peer_high=*/4);
  // The recovery token arrives; we rebroadcast old seq 4. Install needs the
  // token back after a full rotation (first-visit aggregates are vacuous);
  // nobody supplies the lost seqs 2..3, and the ring installs around them.
  inject_token(RingId{2, 8}, 2, 0, 0, 0);
  ASSERT_EQ(ring->state(), SingleRing::State::kRecovery);
  inject_token(RingId{2, 8}, 2, 1, 1, 1);
  ASSERT_EQ(ring->state(), SingleRing::State::kOperational);
  EXPECT_EQ(ring->stats().old_ring_messages_lost, 2u);

  // Neither M nor M' is completable: M lost its tail, M' its head. Any
  // delivery here is a corrupted cross-message concatenation.
  for (const auto& d : delivered) {
    ADD_FAILURE() << "delivered corrupt payload \"" << d.payload << "\" (origin "
                  << d.origin << ", seq " << d.seq << ")";
  }
  EXPECT_FALSE(ring->has_partial_fragments())
      << "fragment state must be dropped with the seqs that were lost";
}

// A fragmented message completed through recovery must be reported with
// recovered=true and the FIRST fragment's seq (its position in the total
// order), no matter which fragment arrived through the recovery path.
TEST_F(RingTransitionFixture, RecoveredFragmentReportsWholeMessageRecovered) {
  build(config(3));
  inject_entry(RingId{1, 4}, 1, fragment(1, 1, 0, 2, "AAAA"));
  EXPECT_TRUE(delivered.empty());

  enter_recovery_with_peer(/*peer_aru=*/2, /*peer_high=*/2);
  // Peer 2 rebroadcasts old seq 2 (the tail fragment we never saw)
  // encapsulated on the new ring.
  inject_entry(RingId{2, 8}, 2,
               encapsulated(1, 2, RingId{1, 4}, fragment(2, 1, 1, 2, "BBBB")));

  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0].origin, 1u);
  EXPECT_EQ(delivered[0].payload, "AAAABBBB");
  EXPECT_TRUE(delivered[0].recovered)
      << "a message completed via recovery must be flagged recovered";
  EXPECT_EQ(delivered[0].seq, 1u)
      << "a reassembled message is identified by its first fragment's seq";

  inject_token(RingId{2, 8}, 2, 0, 1, 1);
  inject_token(RingId{2, 8}, 2, 1, 1, 1);  // full rotation completes recovery
  EXPECT_EQ(ring->state(), SingleRing::State::kOperational);
  EXPECT_EQ(ring->stats().old_ring_messages_recovered, 1u);
  EXPECT_EQ(delivered.size(), 1u);
}

// The recovered flag on unfragmented messages: anything delivered through
// the old-ring recovery path carries recovered=true.
TEST_F(RingTransitionFixture, RecoveredPlainMessageFlagged) {
  build(config(3));
  inject_entry(RingId{1, 4}, 1, plain(1, 1, "one"));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_FALSE(delivered[0].recovered);

  enter_recovery_with_peer(/*peer_aru=*/2, /*peer_high=*/2);
  inject_entry(RingId{2, 8}, 2, encapsulated(1, 2, RingId{1, 4}, plain(2, 1, "two")));

  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[1].payload, "two");
  EXPECT_EQ(delivered[1].seq, 2u);
  EXPECT_TRUE(delivered[1].recovered)
      << "old-ring messages delivered during recovery must be flagged";

  inject_token(RingId{2, 8}, 2, 0, 1, 1);
  inject_token(RingId{2, 8}, 2, 1, 1, 1);  // full rotation completes recovery
  EXPECT_EQ(ring->state(), SingleRing::State::kOperational);
}

// Double failure: the recovery ring itself dies. The abandoned old-ring
// store must be counted as lost exactly once, stale fragment state must go
// with it, and the per-node pseudo ring id must never collide with any
// committed ring.
TEST_F(RingTransitionFixture, DoubleFailureAccountingAndPseudoRingId) {
  build(config(3));
  inject_entry(RingId{1, 4}, 1, fragment(1, 1, 0, 2, "AAAA"));
  inject_entry(RingId{1, 4}, 1, fragment(4, 1, 1, 2, "DDDD"));

  enter_recovery_with_peer(/*peer_aru=*/1, /*peer_high=*/4);
  EXPECT_TRUE(ring->has_partial_fragments());

  // No recovery token ever arrives: the recovery ring {2,8} failed too.
  sim.run_for(Duration{150'000});
  ASSERT_EQ(ring->state(), SingleRing::State::kGather);
  // Only the seqs we actually held (seq 4) count as lost here; the install
  // never happened, so the unrecoverable gap 2..3 is not double-counted.
  EXPECT_EQ(ring->stats().old_ring_messages_lost, 1u);
  EXPECT_FALSE(ring->has_partial_fragments())
      << "abandoning the old store must abandon its partial fragments";

  // The pseudo ring id is per-node and sits strictly between the failed
  // ring's seq and any future committed seq (commits jump by 4 past the
  // highest seen, which includes the pseudo id), so it can never collide
  // with a committed ring.
  const RingId pseudo = ring->ring();
  EXPECT_EQ(pseudo, (RingId{3, 9}));
  EXPECT_NE(pseudo, (RingId{1, 4}));
  EXPECT_NE(pseudo, (RingId{2, 8}));

  // Re-form with the surviving peer; the new committed ring's seq advances
  // past the pseudo id. The join must land inside the gather grace window,
  // before the lone node concludes it is a singleton.
  inject_join(2, {2, 3}, {}, 9);
  sim.run_for(Duration{60'000});  // grace period passes; consensus on {2,3}
  ASSERT_EQ(ring->state(), SingleRing::State::kGather);

  wire::CommitToken c;
  c.new_ring = RingId{2, 13};
  c.sender = 2;
  c.hop = 1;
  c.members.resize(2);
  c.members[0].node = 2;
  c.members[0].old_ring = RingId{2, 8};
  c.members[0].filled = true;
  c.members[1].node = 3;
  rep.inject_message(wire::serialize_commit(c));
  ASSERT_EQ(ring->state(), SingleRing::State::kCommit);
  auto fwd = sent_commits().back().second;
  fwd.hop = 2;
  rep.inject_message(wire::serialize_commit(fwd));
  ASSERT_EQ(ring->state(), SingleRing::State::kRecovery);
  EXPECT_EQ(sent_commits().back().second.members[1].old_ring, pseudo)
      << "our commit slot carries the pseudo ring id";

  inject_token(RingId{2, 13}, 2, 0, 0, 0);
  inject_token(RingId{2, 13}, 2, 1, 0, 0);  // full rotation completes recovery
  ASSERT_EQ(ring->state(), SingleRing::State::kOperational);
  EXPECT_EQ(ring->ring(), (RingId{2, 13}));
  EXPECT_GT(ring->ring().ring_seq, pseudo.ring_seq);
  EXPECT_EQ(ring->stats().old_ring_messages_lost, 1u)
      << "the lost messages were already accounted at the double failure";
  for (const auto& v : views) {
    EXPECT_NE(v.ring, pseudo) << "a pseudo ring must never be installed";
  }
}

// The install decision must be ring-wide. Once one member observed the
// condition and marked the token, members later in the rotation install on
// the mark even though the token they see already carries post-install
// application traffic (aru < seq, backlog != 0) — re-evaluating the
// condition locally would strand them in Recovery on an operational ring
// while its safe line advances past messages they hold (found by the
// fault-injection campaign engine, totem_chaos seed 2042).
TEST_F(RingTransitionFixture, InstallMarkOverridesLocalConditionAndPropagates) {
  build(config(3));
  enter_recovery_with_peer(/*peer_aru=*/0, /*peer_high=*/0);

  // First visit, marked token: the peer installed and has broadcast 5 new
  // messages we have not received yet.
  inject_token(RingId{2, 8}, 2, 0, /*seq=*/5, /*aru=*/3, /*install=*/true);
  EXPECT_EQ(ring->state(), SingleRing::State::kOperational);
  ASSERT_FALSE(views.empty());
  EXPECT_EQ(views.back().ring, (RingId{2, 8}));
  EXPECT_TRUE(last_forwarded_token().install)
      << "the mark must survive forwarding so every member sees it";
}

// Fresh application traffic broadcast by already-installed members can reach
// a node that is still recovering. It must be HELD and delivered once the
// node installs — not skipped as if it were an encapsulated old-ring
// message, and not delivered raw.
TEST_F(RingTransitionFixture, FreshTrafficDuringRecoveryDeliveredAfterInstall) {
  build(config(3));
  inject_entry(RingId{1, 4}, 1, plain(1, 1, "one"));
  ASSERT_EQ(delivered.size(), 1u);

  enter_recovery_with_peer(/*peer_aru=*/2, /*peer_high=*/2);
  // Peer 2 rebroadcasts old seq 2, installs, then broadcasts a fresh
  // message — all before our first recovery-token visit.
  inject_entry(RingId{2, 8}, 2, encapsulated(1, 2, RingId{1, 4}, plain(2, 1, "two")));
  inject_entry(RingId{2, 8}, 2, plain(2, 2, "fresh"));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[1].payload, "two");
  EXPECT_TRUE(delivered[1].recovered);

  inject_token(RingId{2, 8}, 2, 0, /*seq=*/2, /*aru=*/2, /*install=*/true);
  EXPECT_EQ(ring->state(), SingleRing::State::kOperational);
  ASSERT_EQ(delivered.size(), 3u);
  EXPECT_EQ(delivered[2].payload, "fresh");
  EXPECT_FALSE(delivered[2].recovered);
  EXPECT_EQ(delivered[2].seq, 2u);
}

}  // namespace
}  // namespace totem::srp

#include "srp/wire.h"

#include <gtest/gtest.h>

namespace totem::srp::wire {
namespace {

Bytes payload_of(std::size_t n, std::byte fill = std::byte{0x5A}) {
  return Bytes(n, fill);
}

TEST(WireRegular, RoundTrip) {
  PacketHeader h{PacketType::kRegular, 3, RingId{1, 8}};
  std::vector<MessageEntry> entries;
  for (int i = 0; i < 3; ++i) {
    MessageEntry e;
    e.seq = 100 + i;
    e.origin = 3;
    e.payload = payload_of(50 + i);
    entries.push_back(e);
  }
  const Bytes pkt = serialize_regular(h, entries);
  auto parsed = parse_messages(pkt);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().header.type, PacketType::kRegular);
  EXPECT_EQ(parsed.value().header.sender, 3u);
  EXPECT_EQ(parsed.value().header.ring, (RingId{1, 8}));
  ASSERT_EQ(parsed.value().entries.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(parsed.value().entries[i].seq, 100u + i);
    EXPECT_EQ(parsed.value().entries[i].origin, 3u);
    EXPECT_EQ(parsed.value().entries[i].payload.size(), 50u + i);
  }
}

TEST(WireRegular, PaperFramingTwo700ByteMessagesFillExactly1424Bytes) {
  // The paper's packing peak: two 700-byte messages exactly fill the
  // 1424-byte Totem payload (§8).
  PacketHeader h{PacketType::kRegular, 0, RingId{0, 4}};
  std::vector<MessageEntry> entries(2);
  entries[0].seq = 1;
  entries[0].origin = 0;
  entries[0].payload = payload_of(700);
  entries[1].seq = 2;
  entries[1].origin = 0;
  entries[1].payload = payload_of(700);
  const Bytes pkt = serialize_regular(h, entries);
  EXPECT_EQ(pkt.size() - kPacketHeaderSize, 1424u);
  EXPECT_EQ(kRegularBodyFixed + 2 * (kRegularEntryOverhead + 700), 1424u);
}

TEST(WireRegular, MaxUnfragmentedPayloadFits) {
  PacketHeader h{PacketType::kRegular, 0, RingId{0, 4}};
  std::vector<MessageEntry> entries(1);
  entries[0].seq = 1;
  entries[0].origin = 0;
  entries[0].payload = payload_of(kMaxUnfragmentedPayload);
  const Bytes pkt = serialize_regular(h, entries);
  EXPECT_EQ(pkt.size(), kPacketHeaderSize + kMaxBody);
}

TEST(WireRetransmit, RoundTripNonConsecutive) {
  PacketHeader h{PacketType::kRetransmit, 2, RingId{0, 4}};
  std::vector<MessageEntry> entries(2);
  entries[0].seq = 10;
  entries[0].origin = 1;
  entries[0].payload = payload_of(20);
  entries[1].seq = 55;
  entries[1].origin = 4;
  entries[1].flags = MessageEntry::kFlagFragment;
  entries[1].frag_index = 2;
  entries[1].frag_count = 5;
  entries[1].payload = payload_of(33);
  const Bytes pkt = serialize_retransmit(h, entries);
  auto parsed = parse_messages(pkt);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().header.type, PacketType::kRetransmit);
  EXPECT_EQ(parsed.value().entries[0].seq, 10u);
  EXPECT_EQ(parsed.value().entries[0].origin, 1u);
  EXPECT_EQ(parsed.value().entries[1].seq, 55u);
  EXPECT_EQ(parsed.value().entries[1].origin, 4u);
  EXPECT_TRUE(parsed.value().entries[1].is_fragment());
  EXPECT_EQ(parsed.value().entries[1].frag_index, 2);
  EXPECT_EQ(parsed.value().entries[1].frag_count, 5);
}

TEST(WireToken, RoundTrip) {
  Token t;
  t.ring = RingId{2, 12};
  t.sender = 5;
  t.seq = 1000;
  t.aru = 990;
  t.aru_id = 3;
  t.rotation = 77;
  t.fcc = 40;
  t.backlog = 12;
  t.rtr = {991, 995, 999};
  const Bytes pkt = serialize_token(t);
  auto parsed = parse_token(pkt);
  ASSERT_TRUE(parsed.is_ok());
  const Token& p = parsed.value();
  EXPECT_EQ(p.ring, t.ring);
  EXPECT_EQ(p.sender, 5u);
  EXPECT_EQ(p.seq, 1000u);
  EXPECT_EQ(p.aru, 990u);
  EXPECT_EQ(p.aru_id, 3u);
  EXPECT_EQ(p.rotation, 77u);
  EXPECT_EQ(p.fcc, 40u);
  EXPECT_EQ(p.backlog, 12u);
  EXPECT_EQ(p.rtr, t.rtr);
}

TEST(WireToken, InstanceIdOrdering) {
  Token a;
  a.rotation = 1;
  a.seq = 10;
  Token b;
  b.rotation = 1;
  b.seq = 11;
  Token c;
  c.rotation = 2;
  c.seq = 10;
  EXPECT_LT(a.instance_id(), b.instance_id());
  EXPECT_LT(b.instance_id(), c.instance_id());
}

TEST(WireJoin, RoundTrip) {
  JoinMessage j;
  j.sender = 7;
  j.proc_set = {1, 2, 7};
  j.fail_set = {4};
  j.ring_seq = 20;
  const Bytes pkt = serialize_join(j);
  auto parsed = parse_join(pkt);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().sender, 7u);
  EXPECT_EQ(parsed.value().proc_set, j.proc_set);
  EXPECT_EQ(parsed.value().fail_set, j.fail_set);
  EXPECT_EQ(parsed.value().ring_seq, 20u);
}

TEST(WireCommit, RoundTrip) {
  CommitToken c;
  c.new_ring = RingId{1, 24};
  c.sender = 1;
  c.hop = 3;
  CommitMember m;
  m.node = 2;
  m.old_ring = RingId{1, 20};
  m.my_aru = 500;
  m.high_seq = 510;
  m.filled = true;
  CommitMember other;
  other.node = 3;
  c.members = {m, other};
  const Bytes pkt = serialize_commit(c);
  auto parsed = parse_commit(pkt);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().new_ring, c.new_ring);
  EXPECT_EQ(parsed.value().hop, 3u);
  ASSERT_EQ(parsed.value().members.size(), 2u);
  EXPECT_EQ(parsed.value().members[0].node, 2u);
  EXPECT_EQ(parsed.value().members[0].my_aru, 500u);
  EXPECT_TRUE(parsed.value().members[0].filled);
  EXPECT_FALSE(parsed.value().members[1].filled);
}

TEST(WireRecovered, RoundTrip) {
  RecoveredMessage rec;
  rec.old_ring = RingId{3, 16};
  rec.original.seq = 42;
  rec.original.origin = 9;
  rec.original.flags = MessageEntry::kFlagFragment;
  rec.original.frag_index = 1;
  rec.original.frag_count = 3;
  rec.original.payload = payload_of(100);
  const Bytes b = serialize_recovered(rec);
  auto parsed = parse_recovered(b);
  ASSERT_TRUE(parsed.is_ok());
  EXPECT_EQ(parsed.value().old_ring, rec.old_ring);
  EXPECT_EQ(parsed.value().original.seq, 42u);
  EXPECT_EQ(parsed.value().original.origin, 9u);
  EXPECT_TRUE(parsed.value().original.is_fragment());
  EXPECT_EQ(parsed.value().original.payload.size(), 100u);
}

TEST(WirePeek, IdentifiesTokens) {
  Token t;
  t.ring = RingId{2, 12};
  t.sender = 5;
  t.seq = 1000;
  t.rotation = 9;
  auto info = peek(serialize_token(t));
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().type, PacketType::kToken);
  EXPECT_EQ(info.value().sender, 5u);
  EXPECT_EQ(info.value().token_seq, 1000u);
  EXPECT_EQ(info.value().token_rotation, 9u);
}

TEST(WirePeek, IdentifiesMessages) {
  PacketHeader h{PacketType::kRegular, 3, RingId{1, 8}};
  std::vector<MessageEntry> entries(1);
  entries[0].seq = 5;
  entries[0].origin = 3;
  entries[0].payload = payload_of(10);
  auto info = peek(serialize_regular(h, entries));
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().type, PacketType::kRegular);
  EXPECT_EQ(info.value().sender, 3u);
}

TEST(WireParse, RejectsGarbage) {
  Bytes garbage(64, std::byte{0xFF});
  EXPECT_FALSE(peek(garbage).is_ok());
  EXPECT_FALSE(parse_token(garbage).is_ok());
  EXPECT_FALSE(parse_messages(garbage).is_ok());
}

TEST(WireParse, RejectsTruncated) {
  Token t;
  t.ring = RingId{2, 12};
  t.rtr = {1, 2, 3};
  Bytes pkt = serialize_token(t);
  for (std::size_t cut : {pkt.size() - 1, pkt.size() / 2, kPacketHeaderSize - 1}) {
    BytesView view(pkt.data(), cut);
    EXPECT_FALSE(parse_token(view).is_ok()) << "cut at " << cut;
  }
}

TEST(WireParse, RejectsWrongType) {
  Token t;
  t.ring = RingId{2, 12};
  const Bytes pkt = serialize_token(t);
  EXPECT_FALSE(parse_messages(pkt).is_ok());
  EXPECT_FALSE(parse_join(pkt).is_ok());
  EXPECT_FALSE(parse_commit(pkt).is_ok());
}

TEST(WireParse, RejectsEmptyMessagePacket) {
  // Hand-craft a regular packet claiming zero entries.
  ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(PacketType::kRegular));
  w.u32(1);
  w.u32(0);
  w.u64(4);
  w.u64(1);  // first_seq
  w.u16(0);  // count = 0
  EXPECT_FALSE(parse_messages(w.view()).is_ok());
}

TEST(WireParse, RejectsBadFragmentIndices) {
  ByteWriter w;
  w.u32(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(PacketType::kRegular));
  w.u32(1);
  w.u32(0);
  w.u64(4);
  w.u64(1);
  w.u16(1);
  w.u8(MessageEntry::kFlagFragment);
  w.u16(5);  // frag_index >= frag_count
  w.u16(3);
  w.u16(0);
  EXPECT_FALSE(parse_messages(w.view()).is_ok());
}

}  // namespace
}  // namespace totem::srp::wire

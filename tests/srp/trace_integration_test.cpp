// The flight recorder attached to a live ring: events appear in causal
// order and tally with the stats counters.
#include <gtest/gtest.h>

#include "common/trace.h"
#include "sim/simulator.h"
#include "srp/single_ring.h"
#include "testing/fake_replicator.h"

namespace totem::srp {
namespace {

using testing::FakeReplicator;

struct TraceFixture : ::testing::Test {
  sim::Simulator sim;
  FakeReplicator rep;
  TraceRing trace{1024};
  std::unique_ptr<SingleRing> ring;

  void build() {
    Config cfg;
    cfg.node_id = 1;
    cfg.initial_members = {1, 2, 3};
    cfg.token_loss_timeout = Duration{10'000'000};
    cfg.trace = &trace;
    ring = std::make_unique<SingleRing>(sim, rep, cfg);
    ring->set_deliver_handler([](const DeliveredMessage&) {});
    ring->start();
    sim.run_for(Duration{1});
  }

  std::size_t count(TraceKind kind) {
    std::size_t n = 0;
    for (const auto& r : trace.snapshot()) {
      if (r.kind == kind) ++n;
    }
    return n;
  }

  void cycle_token() {
    Bytes tok = rep.tokens.back().data;
    rep.inject_token(tok);
  }
};

TEST_F(TraceFixture, TokenEventsPaired) {
  build();
  cycle_token();
  cycle_token();
  EXPECT_EQ(count(TraceKind::kTokenReceived), 3u);  // initial + 2 cycles
  EXPECT_EQ(count(TraceKind::kTokenReceived), count(TraceKind::kTokenForwarded));
  // Received always precedes its forward.
  TraceKind prev = TraceKind::kTokenForwarded;
  for (const auto& r : trace.snapshot()) {
    if (r.kind == TraceKind::kTokenReceived) {
      EXPECT_EQ(prev, TraceKind::kTokenForwarded);
      prev = TraceKind::kTokenReceived;
    } else if (r.kind == TraceKind::kTokenForwarded) {
      prev = TraceKind::kTokenForwarded;
    }
  }
}

TEST_F(TraceFixture, BroadcastAndDeliveryEventsMatchStats) {
  build();
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring->send(Bytes(16, std::byte{1})).is_ok());
  cycle_token();
  EXPECT_EQ(count(TraceKind::kMessageBroadcast), 1u);  // one batch
  EXPECT_EQ(count(TraceKind::kMessageDelivered), ring->stats().messages_delivered);
}

TEST_F(TraceFixture, SafeWatermarkEventEmitted) {
  build();
  ASSERT_TRUE(ring->send(Bytes(8, std::byte{1})).is_ok());
  cycle_token();
  cycle_token();
  ASSERT_EQ(count(TraceKind::kSafeAdvanced), 1u);
  for (const auto& r : trace.snapshot()) {
    if (r.kind == TraceKind::kSafeAdvanced) {
      EXPECT_EQ(r.a, 1u);
    }
  }
}

TEST_F(TraceFixture, RetransmissionPathTraced) {
  build();
  wire::Token t = wire::parse_token(rep.tokens.back().data).value();
  t.rotation += 1;
  t.seq = 4;
  t.aru = 4;
  t.aru_id = kInvalidNode;
  rep.inject_token(wire::serialize_token(t));
  EXPECT_EQ(count(TraceKind::kRetransmitRequested), 1u);
}

TEST_F(TraceFixture, GatherTransitionTraced) {
  Config cfg;
  cfg.node_id = 2;  // non-leader: will lose the token
  cfg.initial_members = {1, 2, 3};
  cfg.token_loss_timeout = Duration{50'000};
  cfg.trace = &trace;
  ring = std::make_unique<SingleRing>(sim, rep, cfg);
  ring->start();
  sim.run_for(Duration{60'000});
  EXPECT_EQ(count(TraceKind::kTokenLoss), 1u);
  EXPECT_GE(count(TraceKind::kStateChange), 1u);
}

TEST_F(TraceFixture, NoTraceRingMeansNoCrash) {
  Config cfg;
  cfg.node_id = 1;
  cfg.initial_members = {1, 2};
  cfg.trace = nullptr;
  ring = std::make_unique<SingleRing>(sim, rep, cfg);
  ring->start();
  sim.run_for(Duration{1});
  ASSERT_TRUE(ring->send(Bytes(8, std::byte{1})).is_ok());
  cycle_token();
  EXPECT_EQ(ring->stats().messages_delivered, 1u);
}

}  // namespace
}  // namespace totem::srp

// Fragmented-message delivery latency (single_ring.cpp deliver_entry):
// srp.delivery_latency_us must measure send() -> delivery of the LAST
// fragment, recorded exactly once per message. A regression that sampled at
// the first fragment (or once per fragment) would under-report multi-packet
// messages — precisely the ones whose latency matters — and inflate the
// sample count.
//
// The proof is timing-shaped: with max_messages_per_visit = 1 each fragment
// needs its own token visit, so a 3-fragment message's last fragment lands
// about two full token rotations after its first. Its latency sample must
// therefore clearly exceed a single-entry message's sample taken on the same
// quiet ring. The simulation clock is deterministic, so the comparison is
// exact, not flaky.
#include <gtest/gtest.h>

#include "harness/sim_cluster.h"
#include "srp/single_ring.h"
#include "srp/wire.h"

namespace totem::harness {
namespace {

struct LatencyView {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
};

LatencyView latency_view(const api::Node& node) {
  const auto snap = node.metrics().snapshot();
  const HistogramSnapshot* h = snap.find_histogram("srp.delivery_latency_us");
  return h ? LatencyView{h->count, h->sum} : LatencyView{};
}

TEST(FragmentLatency, SampleSpansToLastFragmentAndIsRecordedOnce) {
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.srp.max_messages_per_visit = 1;  // one fragment per token visit
  SimCluster cluster(cfg);
  cluster.start_all();
  cluster.run_for(Duration{500'000});

  // Baseline: one unfragmented message on the quiet ring.
  ASSERT_TRUE(cluster.node(0).send(Bytes(64, std::byte{0x11})).is_ok());
  cluster.run_for(Duration{2'000'000});
  const LatencyView after_small = latency_view(cluster.node(0));
  ASSERT_EQ(after_small.count, 1u);
  const std::uint64_t small_us = after_small.sum;
  ASSERT_GT(small_us, 0u);

  // Three fragments -> three token visits before the message completes.
  const std::size_t big = 2 * srp::wire::kMaxUnfragmentedPayload + 100;
  ASSERT_TRUE(cluster.node(0).send(Bytes(big, std::byte{0x22})).is_ok());
  cluster.run_for(Duration{4'000'000});
  ASSERT_FALSE(cluster.node(0).ring().has_partial_fragments());
  const LatencyView after_big = latency_view(cluster.node(0));

  EXPECT_EQ(after_big.count, 2u)
      << "a fragmented message must contribute exactly ONE latency sample";
  const std::uint64_t big_us = after_big.sum - small_us;
  EXPECT_GT(big_us, small_us)
      << "the sample must span the extra token rotations the trailing "
         "fragments need — recording at the first fragment would make the "
         "two messages' latencies indistinguishable";

  // The message arrived whole and in one piece at a remote node too.
  bool delivered = false;
  for (const auto& d : cluster.deliveries(2)) {
    if (d.origin == 0 && d.payload_size == big) delivered = true;
  }
  EXPECT_TRUE(delivered);
}

}  // namespace
}  // namespace totem::harness

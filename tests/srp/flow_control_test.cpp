// Flow-control tests: the simple window rule (paper §2) and the optional
// fair-backlog-sharing rule (Totem SRP TOCS paper).
#include <gtest/gtest.h>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"
#include "sim/simulator.h"
#include "srp/single_ring.h"
#include "testing/fake_replicator.h"

namespace totem::srp {
namespace {

using testing::FakeReplicator;

struct FlowFixture : ::testing::Test {
  sim::Simulator sim;
  FakeReplicator rep;
  std::unique_ptr<SingleRing> ring;

  void build(bool fair, std::uint32_t window = 80, std::uint32_t per_visit = 40) {
    Config cfg;
    cfg.node_id = 1;
    cfg.initial_members = {1, 2, 3};
    cfg.token_loss_timeout = Duration{10'000'000};
    cfg.window_size = window;
    cfg.max_messages_per_visit = per_visit;
    cfg.fair_backlog_sharing = fair;
    ring = std::make_unique<SingleRing>(sim, rep, cfg);
    ring->start();
    sim.run_for(Duration{1});
  }

  SeqNum send_and_visit(std::size_t queue_depth, std::uint32_t token_backlog,
                        std::uint32_t token_fcc = 0) {
    while (ring->send_queue_depth() < queue_depth) {
      EXPECT_TRUE(ring->send(Bytes(8, std::byte{1})).is_ok());
    }
    wire::Token t = wire::parse_token(rep.tokens.back().data).value();
    t.rotation += 1;
    t.backlog = token_backlog;
    t.fcc = token_fcc;
    const SeqNum before = t.seq;
    rep.inject_token(wire::serialize_token(t));
    return wire::parse_token(rep.tokens.back().data).value().seq - before;
  }
};

TEST_F(FlowFixture, SimpleRuleIgnoresBacklogRatio) {
  build(/*fair=*/false);
  // Others report a huge backlog; the simple rule still grants the full
  // per-visit cap.
  EXPECT_EQ(send_and_visit(100, /*token_backlog=*/1000), 40u);
}

TEST_F(FlowFixture, FairShareScalesWithDemand) {
  build(/*fair=*/true);
  // Our 100 of a ring-wide 400 backlog: share = 80 * 100/400 = 20.
  EXPECT_EQ(send_and_visit(100, /*token_backlog=*/400), 20u);
}

TEST_F(FlowFixture, SoleSenderGetsTheWholeWindowUnderFairShare) {
  build(/*fair=*/true);
  // token.backlog only knows about us (or is stale-zero): full allowance.
  EXPECT_EQ(send_and_visit(100, /*token_backlog=*/0), 40u);
  EXPECT_EQ(send_and_visit(100, /*token_backlog=*/100), 40u);
}

TEST_F(FlowFixture, FairShareNeverRoundsToZero) {
  build(/*fair=*/true);
  // A tiny sender among a flood still progresses (share >= 1).
  EXPECT_EQ(send_and_visit(1, /*token_backlog=*/100'000), 1u);
}

TEST_F(FlowFixture, FairShareStillRespectsWindowRemaining) {
  build(/*fair=*/true);
  // fcc nearly exhausts the window: remaining dominates the fair share.
  EXPECT_EQ(send_and_visit(100, /*token_backlog=*/100, /*token_fcc=*/75), 5u);
}

TEST(FairShareCluster, LightSendersAreNotCrowdedOut) {
  // One node saturates; three send a light trickle. With fair sharing the
  // light senders' messages ride nearly every rotation, so their worst-case
  // delivery latency stays near the no-load baseline.
  auto worst_light_latency = [](bool fair) {
    harness::ClusterConfig cfg;
    cfg.node_count = 4;
    cfg.network_count = 2;
    cfg.style = api::ReplicationStyle::kActive;
    cfg.srp.fair_backlog_sharing = fair;
    cfg.record_payloads = false;
    harness::SimCluster cluster(cfg);

    Duration worst{0};
    std::map<std::pair<NodeId, SeqNum>, TimePoint> pending;
    cluster.set_app_deliver_handler(0, [&](const DeliveredMessage&) {});
    cluster.start_all();

    // Heavy sender: node 0 ONLY keeps a deep queue of 900-byte messages.
    std::function<void()> refill_heavy = [&] {
      while (cluster.node(0).ring().send_queue_depth() < 512) {
        if (!cluster.node(0).send(Bytes(900, std::byte{0x77})).is_ok()) break;
      }
      cluster.simulator().schedule(Duration{1'000}, refill_heavy);
    };
    refill_heavy();

    // Light senders: timestamped probes from nodes 1..3.
    int probes_delivered = 0;
    for (NodeId n = 1; n <= 3; ++n) {
      cluster.set_app_deliver_handler(
          0, [&](const DeliveredMessage&) {});  // placeholder, replaced below
    }
    std::map<std::string, TimePoint> sent_at;
    cluster.set_app_deliver_handler(0, [&](const DeliveredMessage& m) {
      if (m.payload.size() > 30) return;  // heavy traffic
      auto it = sent_at.find(totem::to_string(m.payload));
      if (it == sent_at.end()) return;
      worst = std::max(worst, cluster.simulator().now() - it->second);
      ++probes_delivered;
    });
    int counter = 0;
    std::function<void(std::size_t)> probe = [&](std::size_t n) {
      const std::string tag = "p" + std::to_string(counter++);
      sent_at[tag] = cluster.simulator().now();
      (void)cluster.node(n).send(to_bytes(tag));
      cluster.simulator().schedule(Duration{20'000}, [&probe, n] { probe(n); });
    };
    for (std::size_t n = 1; n <= 3; ++n) probe(n);

    cluster.run_for(Duration{1'000'000});
    EXPECT_GT(probes_delivered, 100);
    return worst;
  };

  const Duration fair = worst_light_latency(true);
  const Duration unfair = worst_light_latency(false);
  // Fair sharing must not make light senders worse; typically it helps.
  EXPECT_LE(fair.count(), unfair.count() * 2);
  EXPECT_LT(fair, Duration{100'000}) << "light probes must ride within ~rotations";
}

}  // namespace
}  // namespace totem::srp

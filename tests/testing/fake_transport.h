// Test double for net::Transport: records sends, allows packet injection.
#pragma once

#include <optional>
#include <vector>

#include "net/transport.h"

namespace totem::testing {

class FakeTransport final : public net::Transport {
 public:
  struct Sent {
    Bytes data;
    std::optional<NodeId> unicast_dest;  // nullopt => broadcast
  };

  FakeTransport(NetworkId network, NodeId local) : network_(network), local_(local) {}

  using net::Transport::broadcast;
  using net::Transport::unicast;

  void broadcast(PacketBuffer packet) override {
    const BytesView view = packet.view();
    sent.push_back(Sent{Bytes(view.begin(), view.end()), std::nullopt});
    ++stats_.packets_sent;
    stats_.bytes_sent += packet.size();
  }

  void unicast(NodeId dest, PacketBuffer packet) override {
    const BytesView view = packet.view();
    sent.push_back(Sent{Bytes(view.begin(), view.end()), dest});
    ++stats_.packets_sent;
    stats_.bytes_sent += packet.size();
  }

  void set_rx_handler(RxHandler handler) override { rx_ = std::move(handler); }

  [[nodiscard]] NetworkId network_id() const override { return network_; }
  [[nodiscard]] NodeId local_node() const override { return local_; }
  [[nodiscard]] const Stats& stats() const override { return stats_; }

  /// Deliver a packet to the attached replicator as if it arrived on this
  /// network from `source`.
  void inject(BytesView packet, NodeId source) {
    ++stats_.packets_received;
    stats_.bytes_received += packet.size();
    if (rx_) {
      rx_(net::ReceivedPacket{BufferPool::scratch().copy_of(packet), source, network_});
    }
  }

  std::vector<Sent> sent;

 private:
  NetworkId network_;
  NodeId local_;
  RxHandler rx_;
  Stats stats_;
};

}  // namespace totem::testing

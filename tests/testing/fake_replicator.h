// Test double for rrp::Replicator: records the SRP's sends and lets tests
// inject packets directly into the SRP's handlers.
#pragma once

#include <optional>
#include <vector>

#include "rrp/replicator.h"
#include "srp/wire.h"

namespace totem::testing {

class FakeReplicator final : public rrp::Replicator {
 public:
  struct SentToken {
    NodeId dest;
    Bytes data;
  };

  using rrp::Replicator::broadcast_message;
  using rrp::Replicator::send_token;

  void broadcast_message(PacketBuffer packet) override {
    ++stats_.messages_sent;
    const BytesView view = packet.view();
    broadcasts.emplace_back(view.begin(), view.end());
  }

  void send_token(NodeId next, PacketBuffer packet) override {
    ++stats_.tokens_sent;
    const BytesView view = packet.view();
    tokens.push_back(SentToken{next, Bytes(view.begin(), view.end())});
  }

  void on_packet(net::ReceivedPacket&& packet) override {
    auto info = srp::wire::peek(packet.data);
    if (!info) return;
    if (info.value().type == srp::wire::PacketType::kToken) {
      deliver_token_up(packet.data, packet.network);
    } else {
      deliver_message_up(packet.data, packet.network);
    }
  }

  [[nodiscard]] std::size_t network_count() const override { return 1; }
  [[nodiscard]] bool network_faulty(NetworkId) const override { return false; }
  void reset_network(NetworkId) override {}
  void mark_faulty(NetworkId) override {}

  // ---- test helpers ----
  void inject_message(BytesView packet, NetworkId net = 0) {
    deliver_message_up(packet, net);
  }
  void inject_token(BytesView packet, NetworkId net = 0) {
    deliver_token_up(packet, net);
  }
  [[nodiscard]] bool query_missing(SeqNum token_seq) const {
    return srp_missing_messages(token_seq);
  }

  /// Parse the most recently forwarded token.
  [[nodiscard]] srp::wire::Token last_token() const {
    auto t = srp::wire::parse_token(tokens.back().data);
    return t.is_ok() ? t.value() : srp::wire::Token{};
  }

  std::vector<Bytes> broadcasts;
  std::vector<SentToken> tokens;
};

}  // namespace totem::testing

// Unit tests for the pooled packet-buffer machinery: refcount lifetime,
// slab reuse, view narrowing, pool-before-buffer destruction, and
// concurrent acquire/release safety.
#include "common/packet_buffer.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

namespace totem {
namespace {

PacketBuffer filled(BufferPool& pool, std::size_t n, std::byte value) {
  PacketBuffer b = pool.acquire();
  b.mutable_bytes().assign(n, value);
  return b;
}

TEST(PacketBuffer, DefaultHandleIsEmpty) {
  PacketBuffer b;
  EXPECT_FALSE(b);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  b.reset();  // resetting an empty handle is a no-op
}

TEST(PacketBuffer, CopySharesTheSlab) {
  BufferPool pool;
  PacketBuffer a = filled(pool, 4, std::byte{7});
  EXPECT_EQ(a.ref_count(), 1u);

  PacketBuffer b = a;
  EXPECT_EQ(a.ref_count(), 2u);
  EXPECT_EQ(a.data(), b.data()) << "copies must alias, not duplicate";

  a.reset();
  EXPECT_EQ(b.ref_count(), 1u);
  EXPECT_EQ(b[0], std::byte{7}) << "surviving handle keeps the bytes alive";

  b.reset();
  EXPECT_EQ(pool.stats().returns, 1u) << "slab returned once, by the last handle";
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(PacketBuffer, MoveTransfersWithoutTouchingTheRefcount) {
  BufferPool pool;
  PacketBuffer a = filled(pool, 4, std::byte{7});
  PacketBuffer b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  EXPECT_EQ(b.ref_count(), 1u);
  EXPECT_EQ(pool.stats().allocations, 1u);
}

TEST(PacketBuffer, ViewNarrowingIsCopyFree) {
  BufferPool pool;
  PacketBuffer b = pool.acquire();
  for (int i = 0; i < 8; ++i) b.mutable_bytes().push_back(std::byte(i));
  const std::byte* base = b.data();

  b.drop_front(2);
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(b.data(), base + 2);
  EXPECT_EQ(b[0], std::byte{2});

  b.truncate(3);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data(), base + 2) << "truncate keeps the front";
}

TEST(BufferPool, SlabsAreReused) {
  BufferPool pool;
  filled(pool, 64, std::byte{1}).reset();
  PacketBuffer again = pool.acquire();
  EXPECT_EQ(pool.stats().allocations, 1u);
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_TRUE(again.empty()) << "acquire() hands back a cleared buffer";
}

TEST(BufferPool, StatsTrackOutstandingAndHighWater) {
  BufferPool pool;
  std::vector<PacketBuffer> held;
  for (int i = 0; i < 3; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.stats().outstanding, 3u);
  EXPECT_EQ(pool.stats().high_water, 3u);
  held.clear();
  EXPECT_EQ(pool.stats().outstanding, 0u);
  EXPECT_EQ(pool.stats().high_water, 3u) << "high-water never decreases";
}

TEST(BufferPool, CopyOfCapturesTheBytes) {
  BufferPool pool;
  const Bytes src = {std::byte{1}, std::byte{2}, std::byte{3}};
  PacketBuffer b = pool.copy_of(src);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[2], std::byte{3});
}

TEST(BufferPool, AcquireUninitializedBoundsTheView) {
  BufferPool pool;
  PacketBuffer b = pool.acquire_uninitialized(128);
  EXPECT_EQ(b.size(), 128u);
}

TEST(BufferPool, BuffersOutliveTheirPool) {
  auto pool = std::make_unique<BufferPool>();
  PacketBuffer survivor = filled(*pool, 16, std::byte{42});
  pool.reset();  // pool torn down while a buffer is still in flight
  EXPECT_EQ(survivor.size(), 16u);
  EXPECT_EQ(survivor[15], std::byte{42});
  survivor.reset();  // frees the orphaned slab instead of a dead freelist
}

TEST(BufferPool, ConcurrentAcquireCopyReleaseIsSafe) {
  BufferPool pool;
  constexpr int kThreads = 4;
  constexpr int kRounds = 2'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool, t] {
      for (int i = 0; i < kRounds; ++i) {
        PacketBuffer a = pool.acquire();
        a.mutable_bytes().assign(32, std::byte(t));
        PacketBuffer b = a;  // cross-handle refcount traffic
        a.reset();
        ASSERT_EQ(b[0], std::byte(t));
        b.reset();
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto stats = pool.stats();
  EXPECT_EQ(stats.outstanding, 0u);
  EXPECT_EQ(stats.allocations + stats.reuses,
            static_cast<std::uint64_t>(kThreads) * kRounds);
}

}  // namespace
}  // namespace totem

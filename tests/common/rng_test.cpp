#include "common/rng.h"

#include <gtest/gtest.h>

namespace totem {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, ChanceZeroAndOne) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

}  // namespace
}  // namespace totem

#include "common/status.h"

#include <gtest/gtest.h>

namespace totem {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s{StatusCode::kMalformedPacket, "truncated header"};
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kMalformedPacket);
  EXPECT_EQ(s.to_string(), "MALFORMED_PACKET: truncated header");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status{StatusCode::kNotFound, "nope"};
  EXPECT_FALSE(r.is_ok());
  EXPECT_FALSE(r);
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, TakeMovesValue) {
  Result<std::string> r = std::string("moveme");
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "moveme");
}

TEST(StatusCodeName, CoversAllCodes) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kResourceExhausted), "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(status_code_name(StatusCode::kUnavailable), "UNAVAILABLE");
}

}  // namespace
}  // namespace totem

#include "common/bytes.h"

#include <gtest/gtest.h>

namespace totem {
namespace {

TEST(ByteWriter, RoundTripsScalars) {
  ByteWriter w;
  w.u8(0x12);
  w.u16(0x3456);
  w.u32(0x789ABCDE);
  w.u64(0x0123456789ABCDEFull);
  const Bytes buf = std::move(w).take();
  EXPECT_EQ(buf.size(), 1u + 2 + 4 + 8);

  ByteReader r(buf);
  EXPECT_EQ(r.u8().value(), 0x12);
  EXPECT_EQ(r.u16().value(), 0x3456);
  EXPECT_EQ(r.u32().value(), 0x789ABCDEu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteWriter, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  const Bytes buf = std::move(w).take();
  EXPECT_EQ(std::to_integer<int>(buf[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(buf[3]), 0x01);
}

TEST(ByteWriter, BlobRoundTrip) {
  ByteWriter w;
  w.blob(to_bytes("hello world"));
  const Bytes buf = std::move(w).take();
  ByteReader r(buf);
  auto blob = r.blob();
  ASSERT_TRUE(blob.is_ok());
  EXPECT_EQ(to_string(blob.value()), "hello world");
}

TEST(ByteWriter, PatchU32) {
  ByteWriter w;
  w.u32(0);
  w.u8(42);
  w.patch_u32(0, 0xDEADBEEF);
  ByteReader r(w.view());
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u8().value(), 42);
}

TEST(ByteReader, UnderflowIsError) {
  Bytes buf(3);
  ByteReader r(buf);
  EXPECT_TRUE(r.u16().is_ok());
  auto v = r.u16();  // only 1 byte left
  EXPECT_FALSE(v.is_ok());
  EXPECT_EQ(v.status().code(), StatusCode::kMalformedPacket);
}

TEST(ByteReader, BlobLengthBeyondBufferIsError) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8(1);
  const Bytes buf = std::move(w).take();
  ByteReader r(buf);
  EXPECT_FALSE(r.blob().is_ok());
}

TEST(ByteReader, RawTracksPosition) {
  Bytes buf(10, std::byte{7});
  ByteReader r(buf);
  ASSERT_TRUE(r.raw(4).is_ok());
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 6u);
  ASSERT_TRUE(r.raw(6).is_ok());
  EXPECT_FALSE(r.raw(1).is_ok());
}

TEST(Bytes, StringConversionRoundTrip) {
  const std::string s = "totem\0rrp";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(ByteReader, EmptyBufferIsImmediatelyExhausted) {
  ByteReader r(BytesView{});
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(r.u8().is_ok());
}

}  // namespace
}  // namespace totem

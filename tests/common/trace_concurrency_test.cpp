// Regression proof for the TraceRing threading contract (DESIGN.md §16):
// under ThreadedRuntime the ordering thread (protocol events) and the I/O
// thread (datapath batch events) emit concurrently while the telemetry
// endpoint snapshots /trace from the reactor thread. The seqlock must
// never return a torn record, and every shared field must be an atomic —
// the tsan preset runs this test to enforce both.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/trace.h"

namespace totem {
namespace {

TimePoint at(Duration::rep us) { return TimePoint{} + Duration{us}; }

// Writers stamp b = a ^ kMask into every record; a torn read (fields from
// two different writes) breaks the pairing with overwhelming probability.
constexpr std::uint64_t kMask = 0x5a5a5a5aa5a5a5a5ull;

TEST(TraceRingConcurrency, ParallelEmitSnapshotAndContextStayCoherent) {
  TraceRing ring(256);  // small: force constant lapping/overwrites
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20'000;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> records_read{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t a = (static_cast<std::uint64_t>(w) << 32) | i;
        ring.emit(at(static_cast<Duration::rep>(i)),
                  TraceKind::kMessageDelivered, a, a ^ kMask);
      }
    });
  }

  // The SRP refreshes correlation context while others emit and read.
  std::thread context([&] {
    std::uint64_t seq = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ring.set_token_seq(++seq);
      ring.set_ring_seq(seq / 7);
      ring.set_node(static_cast<NodeId>(seq % 4));
    }
  });

  // The /trace endpoint: snapshot + serialize from a non-writer thread.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const TraceRecord& r : ring.snapshot()) {
        ++records_read;
        if (r.kind != TraceKind::kMessageDelivered || r.b != (r.a ^ kMask)) {
          ++torn;
        }
      }
      (void)ring.to_jsonl(64);
      (void)ring.dropped();
    }
  });

  for (auto& t : writers) t.join();
  // On an oversubscribed host the reader may only get scheduled after the
  // writers finish; keep it alive until it has read at least one record so
  // the coverage assertion below cannot depend on scheduler luck.
  while (records_read.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  context.join();
  reader.join();

  EXPECT_EQ(ring.total_emitted(), kWriters * kPerWriter);
  EXPECT_EQ(torn.load(), 0u) << "seqlock returned a torn record";
  EXPECT_GT(records_read.load(), 0u) << "reader never ran";

  // Quiescent snapshot: exactly one coherent record per surviving slot.
  const auto final_snap = ring.snapshot();
  EXPECT_EQ(final_snap.size(), ring.capacity());
  for (const TraceRecord& r : final_snap) {
    ASSERT_EQ(r.b, r.a ^ kMask);
  }
}

}  // namespace
}  // namespace totem

#include "common/crc32.h"

#include <gtest/gtest.h>

namespace totem {
namespace {

TEST(Crc32, KnownVector) {
  // CRC-32/IEEE of "123456789" is 0xCBF43926.
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) { EXPECT_EQ(crc32({}), 0u); }

TEST(Crc32, SensitiveToSingleBitFlip) {
  Bytes a = to_bytes("the totem redundant ring protocol");
  Bytes b = a;
  b[7] ^= std::byte{0x01};
  EXPECT_NE(crc32(a), crc32(b));
}

TEST(Crc32, Deterministic) {
  const Bytes data = to_bytes("determinism matters in simulators");
  EXPECT_EQ(crc32(data), crc32(data));
}

}  // namespace
}  // namespace totem

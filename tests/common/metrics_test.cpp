#include "common/metrics.h"

#include <gtest/gtest.h>

#include "common/json.h"

namespace totem {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetsSignedValues) {
  Gauge g;
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  g.set(123);
  EXPECT_EQ(g.value(), 123);
}

TEST(LatencyHistogram, TracksExactMinMaxMeanCount) {
  LatencyHistogram h;
  for (std::uint64_t v : {10u, 20u, 30u, 40u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 100u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
}

TEST(LatencyHistogram, BucketsArePowerOfTwo) {
  LatencyHistogram h;
  h.record(0);   // bucket 0
  h.record(1);   // bucket 1: [1,1]
  h.record(2);   // bucket 2: [2,3]
  h.record(3);   // bucket 2
  h.record(4);   // bucket 3: [4,7]
  const auto& b = h.buckets();
  EXPECT_EQ(b[0], 1u);
  EXPECT_EQ(b[1], 1u);
  EXPECT_EQ(b[2], 2u);
  EXPECT_EQ(b[3], 1u);
}

TEST(LatencyHistogram, HugeValuesClampToTopBucket) {
  LatencyHistogram h;
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.buckets().back(), 1u);
  EXPECT_EQ(h.max(), ~std::uint64_t{0});
}

HistogramSnapshot snap_of(const LatencyHistogram& h) {
  HistogramSnapshot s;
  s.count = h.count();
  s.sum = h.sum();
  s.min = h.min();
  s.max = h.max();
  s.buckets = h.buckets();
  return s;
}

TEST(HistogramSnapshot, PercentilesOfUniformSpread) {
  LatencyHistogram h;
  // 1000 samples spread 1..1000us.
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const auto s = snap_of(h);
  // Log-bucketed percentiles carry up to a factor-of-two relative error;
  // assert the ordering plus a loose envelope.
  EXPECT_GT(s.p50(), 250.0);
  EXPECT_LT(s.p50(), 1000.0);
  EXPECT_LE(s.p50(), s.p90());
  EXPECT_LE(s.p90(), s.p99());
  EXPECT_LE(s.p99(), s.p999());
  EXPECT_LE(s.p999(), static_cast<double>(s.max));
  EXPECT_GE(s.p50(), static_cast<double>(s.min));
}

TEST(HistogramSnapshot, SingleSampleAllPercentilesEqualIt) {
  LatencyHistogram h;
  h.record(77);
  const auto s = snap_of(h);
  EXPECT_DOUBLE_EQ(s.p50(), 77.0);
  EXPECT_DOUBLE_EQ(s.p999(), 77.0);
  EXPECT_DOUBLE_EQ(s.mean(), 77.0);
}

TEST(HistogramSnapshot, EmptyIsAllZero) {
  HistogramSnapshot s;
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(MetricsRegistry, StablePointersAndIdempotentLookup) {
  MetricsRegistry reg;
  Counter* a = reg.counter("srp.token_loss_events");
  Counter* b = reg.counter("srp.token_loss_events");
  EXPECT_EQ(a, b);
  // Registering more instruments must not move existing ones.
  for (int i = 0; i < 100; ++i) {
    (void)reg.counter("c" + std::to_string(i));
    (void)reg.histogram("h" + std::to_string(i));
  }
  EXPECT_EQ(reg.counter("srp.token_loss_events"), a);
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  MetricsRegistry reg;
  reg.counter("zzz")->add(1);
  reg.counter("aaa")->add(2);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "aaa");
  EXPECT_EQ(snap.counters[1].name, "zzz");
}

TEST(MetricsRegistry, ResetZeroesButKeepsPointersValid) {
  MetricsRegistry reg;
  Counter* c = reg.counter("x");
  LatencyHistogram* h = reg.histogram("y");
  c->add(5);
  h->record(100);
  reg.reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  c->add(1);  // pointer still usable
  EXPECT_EQ(reg.snapshot().counters[0].value, 1u);
}

TEST(MetricsSnapshot, JsonContainsInstruments) {
  MetricsRegistry reg;
  reg.counter("srp.token_loss_events")->add(3);
  reg.histogram("srp.delivery_latency_us")->record(250);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"srp.token_loss_events\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"srp.delivery_latency_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\""), std::string::npos) << json;
}

TEST(MetricsSnapshot, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("srp.token_loss_events")->add(2);
  reg.gauge("srp.send_queue_depth")->set(9);
  reg.histogram("srp.token_rotation_us")->record(500);
  const std::string prom = reg.snapshot().to_prometheus(R"(node="3")");
  EXPECT_NE(prom.find("# TYPE totem_srp_token_loss_events counter"),
            std::string::npos) << prom;
  EXPECT_NE(prom.find("totem_srp_token_loss_events{node=\"3\"} 2"),
            std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE totem_srp_send_queue_depth gauge"),
            std::string::npos) << prom;
  EXPECT_NE(prom.find("# TYPE totem_srp_token_rotation_us summary"),
            std::string::npos) << prom;
  EXPECT_NE(prom.find("totem_srp_token_rotation_us{node=\"3\",quantile=\"0.99\"}"),
            std::string::npos) << prom;
  EXPECT_NE(prom.find("totem_srp_token_rotation_us_count{node=\"3\"} 1"),
            std::string::npos) << prom;
}

TEST(MetricsSnapshot, FindHelpers) {
  MetricsRegistry reg;
  reg.counter("a")->add(1);
  reg.histogram("h")->record(10);
  const auto snap = reg.snapshot();
  ASSERT_NE(snap.find_counter("a"), nullptr);
  EXPECT_EQ(snap.find_counter("missing"), nullptr);
  ASSERT_NE(snap.find_histogram("h"), nullptr);
  EXPECT_EQ(snap.find_histogram("missing"), nullptr);
}

TEST(JsonWriter, EscapesAndNests) {
  JsonWriter w;
  w.begin_object();
  w.kv("s", "a\"b\\c\nd");
  w.key("arr").begin_array().value(1).value(2.5).null().end_array();
  w.key("nested").begin_object().kv("k", true).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"arr\":[1,2.5,null],"
            "\"nested\":{\"k\":true}}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array().value(std::nan("")).value(1.0 / 0.0).end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

}  // namespace
}  // namespace totem

// SpscRing: single-producer/single-consumer handoff ring (DESIGN.md §12).
#include "common/spsc_ring.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace totem {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(100).capacity(), 128u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRing, PopOnEmptyFails) {
  SpscRing<int> ring(4);
  int out = -1;
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, -1);
}

TEST(SpscRing, PushOnFullFailsAndPopMakesRoom) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99));

  int out = -1;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));  // room again
  for (int expect = 1; expect <= 4; ++expect) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, expect);  // FIFO preserved across the refill
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int> ring(8);
  int out = -1;
  // 1000 push/pop pairs through an 8-slot ring: the indices wrap the
  // buffer 125 times; FIFO order and values must survive every wrap.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(int{i}));
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, i);
  }
  // Same again but keeping the ring half-full so head and tail straddle
  // the wrap point.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  for (int i = 4; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(int{i}));
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_EQ(out, i - 4);
  }
}

TEST(SpscRing, MoveOnlyPayloads) {
  SpscRing<std::unique_ptr<std::string>> ring(4);
  ASSERT_TRUE(ring.try_push(std::make_unique<std::string>("hello")));
  std::unique_ptr<std::string> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, "hello");
}

TEST(SpscRing, CrossThreadStressPreservesOrderAndValues) {
  // One producer thread, one consumer thread, a deliberately tiny ring so
  // both full and empty transitions happen constantly. The consumer checks
  // that every value arrives exactly once, in order — any torn read,
  // missed publication, or double-delivery fails the sequence check.
  // (Under TSan this is also the data-race proof for the handoff.)
  constexpr std::uint64_t kCount = 50'000;
  SpscRing<std::uint64_t> ring(8);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(std::uint64_t{i})) {
        std::this_thread::yield();  // don't starve the consumer on 1 core
      }
    }
  });

  std::uint64_t expected = 0;
  std::uint64_t bad = 0;
  while (expected < kCount) {
    std::uint64_t v = 0;
    if (!ring.try_pop(v)) {
      std::this_thread::yield();
      continue;
    }
    if (v != expected) ++bad;
    ++expected;
  }
  producer.join();
  EXPECT_EQ(bad, 0u);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace totem

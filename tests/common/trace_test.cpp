#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace totem {
namespace {

TimePoint at(Duration::rep us) { return TimePoint{} + Duration{us}; }

TEST(TraceRing, RecordsInOrder) {
  TraceRing ring(16);
  ring.emit(at(1), TraceKind::kTokenReceived, 1, 10);
  ring.emit(at(2), TraceKind::kTokenForwarded, 2, 10);
  auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].kind, TraceKind::kTokenReceived);
  EXPECT_EQ(snap[1].kind, TraceKind::kTokenForwarded);
  EXPECT_EQ(snap[0].a, 1u);
  EXPECT_EQ(snap[0].b, 10u);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.emit(at(static_cast<Duration::rep>(i)), TraceKind::kMessageDelivered, i, i);
  }
  EXPECT_EQ(ring.total_emitted(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().a, 6u) << "oldest surviving record";
  EXPECT_EQ(snap.back().a, 9u);
}

TEST(TraceRing, ClearResets) {
  TraceRing ring(4);
  ring.emit(at(1), TraceKind::kTokenLoss);
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.total_emitted(), 0u);
}

TEST(TraceRing, ZeroCapacityClampsToOne) {
  TraceRing ring(0);
  ring.emit(at(1), TraceKind::kTokenLoss);
  EXPECT_EQ(ring.snapshot().size(), 1u);
}

TEST(TraceRecord, RendersHumanReadably) {
  TraceRecord r{at(1234), TraceKind::kTokenReceived, 3, 40};
  const std::string s = to_string(r);
  EXPECT_NE(s.find("t=1234us"), std::string::npos) << s;
  EXPECT_NE(s.find("token-received"), std::string::npos) << s;
  EXPECT_NE(s.find("rotation=3"), std::string::npos) << s;
  EXPECT_NE(s.find("seq=40"), std::string::npos) << s;
}

TEST(TraceRing, DumpMentionsOverwrites) {
  TraceRing ring(2);
  for (int i = 0; i < 5; ++i) ring.emit(at(i), TraceKind::kTokenLoss);
  EXPECT_NE(ring.to_string().find("3 older events overwritten"), std::string::npos);
}

TEST(TraceKindNames, AllDistinct) {
  std::set<std::string> names;
  for (int k = 1; k <= static_cast<int>(kLastTraceKind); ++k) {
    names.insert(to_string(static_cast<TraceKind>(k)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(kLastTraceKind));
}

TEST(TraceKindNames, NoKindFallsThroughToDefault) {
  for (int k = 1; k <= static_cast<int>(kLastTraceKind); ++k) {
    EXPECT_STRNE(to_string(static_cast<TraceKind>(k)), "?")
        << "kind " << k << " has no to_string entry";
  }
}

TEST(TraceKindNames, EveryKindParsesBackFromItsName) {
  for (int k = 1; k <= static_cast<int>(kLastTraceKind); ++k) {
    const auto kind = static_cast<TraceKind>(k);
    TraceKind parsed{};
    ASSERT_TRUE(trace_kind_from_string(to_string(kind), parsed))
        << "kind " << k << " (" << to_string(kind) << ")";
    EXPECT_EQ(parsed, kind);
  }
  TraceKind parsed{};
  EXPECT_FALSE(trace_kind_from_string("no-such-kind", parsed));
  EXPECT_FALSE(trace_kind_from_string("", parsed));
}

TEST(TraceRecord, EveryKindRendersValidJson) {
  for (int k = 1; k <= static_cast<int>(kLastTraceKind); ++k) {
    TraceRecord r{at(42), static_cast<TraceKind>(k), 7, 9};
    const std::string json = to_json(r);
    // Shape check: one flat object with the four fixed keys.
    EXPECT_EQ(json.front(), '{') << json;
    EXPECT_EQ(json.back(), '}') << json;
    EXPECT_NE(json.find("\"t_us\":42"), std::string::npos) << json;
    EXPECT_NE(json.find("\"kind\":\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"a\":7"), std::string::npos) << json;
    EXPECT_NE(json.find("\"b\":9"), std::string::npos) << json;
    // The rendered kind string round-trips.
    EXPECT_NE(json.find(to_string(r.kind)), std::string::npos) << json;
  }
}

TEST(TraceRing, JsonlOldestFirstAndLastN) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    ring.emit(at(static_cast<Duration::rep>(i)), TraceKind::kSafeAdvanced, i);
  }
  const std::string all = ring.to_jsonl();
  // Capacity 4, 6 emitted: oldest surviving is t=2, and it leads the dump.
  EXPECT_EQ(all.find("{\"t_us\":2"), 0u) << all;
  EXPECT_EQ(std::count(all.begin(), all.end(), '\n'), 4);
  const std::string last2 = ring.to_jsonl(2);
  EXPECT_EQ(std::count(last2.begin(), last2.end(), '\n'), 2);
  EXPECT_NE(last2.find("\"t_us\":4"), std::string::npos) << last2;
  EXPECT_NE(last2.find("\"t_us\":5"), std::string::npos) << last2;
  EXPECT_EQ(last2.find("\"t_us\":3"), std::string::npos) << last2;
}

TEST(TraceRing, JsonArrayWrapsSameRecords) {
  TraceRing ring(8);
  ring.emit(at(1), TraceKind::kTokenLoss);
  ring.emit(at(2), TraceKind::kTokenReceived, 1, 2);
  const std::string arr = ring.to_json_array();
  EXPECT_EQ(arr.front(), '[');
  EXPECT_EQ(arr.back(), ']');
  EXPECT_NE(arr.find("token-loss"), std::string::npos) << arr;
  EXPECT_NE(arr.find("token-received"), std::string::npos) << arr;
  EXPECT_EQ(TraceRing(8).to_json_array(), "[]");
}

}  // namespace
}  // namespace totem

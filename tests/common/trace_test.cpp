#include "common/trace.h"

#include <gtest/gtest.h>

namespace totem {
namespace {

TimePoint at(Duration::rep us) { return TimePoint{} + Duration{us}; }

TEST(TraceRing, RecordsInOrder) {
  TraceRing ring(16);
  ring.emit(at(1), TraceKind::kTokenReceived, 1, 10);
  ring.emit(at(2), TraceKind::kTokenForwarded, 2, 10);
  auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].kind, TraceKind::kTokenReceived);
  EXPECT_EQ(snap[1].kind, TraceKind::kTokenForwarded);
  EXPECT_EQ(snap[0].a, 1u);
  EXPECT_EQ(snap[0].b, 10u);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.emit(at(static_cast<Duration::rep>(i)), TraceKind::kMessageDelivered, i, i);
  }
  EXPECT_EQ(ring.total_emitted(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().a, 6u) << "oldest surviving record";
  EXPECT_EQ(snap.back().a, 9u);
}

TEST(TraceRing, ClearResets) {
  TraceRing ring(4);
  ring.emit(at(1), TraceKind::kTokenLoss);
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.total_emitted(), 0u);
}

TEST(TraceRing, ZeroCapacityClampsToOne) {
  TraceRing ring(0);
  ring.emit(at(1), TraceKind::kTokenLoss);
  EXPECT_EQ(ring.snapshot().size(), 1u);
}

TEST(TraceRecord, RendersHumanReadably) {
  TraceRecord r{at(1234), TraceKind::kTokenReceived, 3, 40};
  const std::string s = to_string(r);
  EXPECT_NE(s.find("t=1234us"), std::string::npos) << s;
  EXPECT_NE(s.find("token-received"), std::string::npos) << s;
  EXPECT_NE(s.find("rotation=3"), std::string::npos) << s;
  EXPECT_NE(s.find("seq=40"), std::string::npos) << s;
}

TEST(TraceRing, DumpMentionsOverwrites) {
  TraceRing ring(2);
  for (int i = 0; i < 5; ++i) ring.emit(at(i), TraceKind::kTokenLoss);
  EXPECT_NE(ring.to_string().find("3 older events overwritten"), std::string::npos);
}

TEST(TraceKindNames, AllDistinct) {
  std::set<std::string> names;
  for (int k = 1; k <= static_cast<int>(TraceKind::kNetworkFault); ++k) {
    names.insert(to_string(static_cast<TraceKind>(k)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(TraceKind::kNetworkFault));
}

}  // namespace
}  // namespace totem

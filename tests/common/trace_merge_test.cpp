#include "common/trace_merge.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/health.h"
#include "common/trace.h"
#include "rrp/replicator.h"

namespace totem {
namespace {

TimePoint at(Duration::rep us) { return TimePoint{} + Duration{us}; }

TraceRecord rec(Duration::rep us, TraceKind kind, std::uint64_t a,
                std::uint64_t b, NodeId node, std::uint64_t ring_seq = 0,
                std::uint64_t token_seq = 0) {
  return TraceRecord{at(us), kind, a, b, node, ring_seq, token_seq};
}

// trace_merge.cpp lives in common/ and cannot include the rrp/ or api/
// headers, so it hard-codes two tiny cross-layer contracts. Pin them here:
// if either enum is renumbered, this test fails before a chaos artifact
// silently mislabels outages or health flips.
TEST(TraceMergeContract, PinsCrossLayerEnumEncodings) {
  // kNetworkFault records carry the rrp::NetworkFaultReport::Reason in `b`;
  // the merger closes an outage span when b == 3 (kReinstated).
  EXPECT_EQ(static_cast<int>(rrp::NetworkFaultReport::Reason::kReinstated), 3);
  // kHealthTransition packs (old_state << 8) | new_state using the
  // api::HealthState values; the merger renders them by this numbering.
  EXPECT_EQ(static_cast<int>(api::HealthState::kHealthy), 0);
  EXPECT_EQ(static_cast<int>(api::HealthState::kDegraded), 1);
  EXPECT_EQ(static_cast<int>(api::HealthState::kFaulted), 2);
  EXPECT_STREQ(api::to_string(api::HealthState::kHealthy), "healthy");
  EXPECT_STREQ(api::to_string(api::HealthState::kDegraded), "degraded");
  EXPECT_STREQ(api::to_string(api::HealthState::kFaulted), "faulted");
}

TEST(TraceMergeParse, RoundTripsRingDumpWithCorrelationKeys) {
  TraceRing ring(16);
  ring.set_node(3);
  ring.set_ring_seq(7);
  ring.set_token_seq(41);
  ring.emit(at(10), TraceKind::kTokenReceived, 5, 41);
  ring.set_token_seq(43);
  ring.emit(at(20), TraceKind::kTokenForwarded, 1, 43);

  std::size_t skipped = 99;
  const auto records = parse_trace_jsonl(ring.to_jsonl(), &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].at, at(10));
  EXPECT_EQ(records[0].kind, TraceKind::kTokenReceived);
  EXPECT_EQ(records[0].a, 5u);
  EXPECT_EQ(records[0].b, 41u);
  EXPECT_EQ(records[0].node, NodeId{3});
  EXPECT_EQ(records[0].ring_seq, 7u);
  EXPECT_EQ(records[0].token_seq, 41u);
  EXPECT_EQ(records[1].kind, TraceKind::kTokenForwarded);
  EXPECT_EQ(records[1].token_seq, 43u);
}

TEST(TraceMergeParse, CountsUnparseableLinesInsteadOfFailing) {
  const std::string jsonl =
      "{\"t_us\":1,\"kind\":\"token-received\",\"a\":1,\"b\":2,"
      "\"node\":0,\"ring_seq\":1,\"token_seq\":2}\n"
      "this line is not json\n"
      "{\"t_us\":2,\"kind\":\"no-such-kind\",\"a\":0,\"b\":0}\n"
      "\n";
  std::size_t skipped = 0;
  const auto records = parse_trace_jsonl(jsonl, &skipped);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].kind, TraceKind::kTokenReceived);
  EXPECT_EQ(skipped, 2u) << "garbage line + unknown kind (blank lines are free)";
}

TEST(TraceMerge, PairsTokenRotationIntoSpan) {
  std::vector<TraceRecord> records;
  // Rotation: received seq 10, forwarded 50us later having stamped to 12.
  records.push_back(rec(100, TraceKind::kTokenReceived, 1, 10, 0, 4, 10));
  records.push_back(rec(150, TraceKind::kTokenForwarded, 1, 12, 0, 4, 12));
  // A receive with no matching forward degrades to an instant, not a drop.
  records.push_back(rec(400, TraceKind::kTokenReceived, 2, 14, 0, 4, 14));

  const std::string json = merge_to_chrome_trace(std::move(records));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"token-rotation\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos) << json;
  EXPECT_NE(json.find("token-received (unforwarded)"), std::string::npos) << json;
  EXPECT_NE(json.find("\"process_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"node 0\""), std::string::npos) << json;
}

TEST(TraceMerge, DrawsCrossNodeDeliverSpanOnDeliveringNode) {
  std::vector<TraceRecord> records;
  // Node 0 broadcasts seq 5; node 1 delivers it 90us later. The span is
  // anchored at the ORIGIN's broadcast timestamp but drawn on node 1.
  records.push_back(rec(110, TraceKind::kMessageBroadcast, 5, 1, 0, 4, 10));
  records.push_back(rec(200, TraceKind::kMessageDelivered, 0, 5, 1, 4, 11));

  const std::string json = merge_to_chrome_trace(std::move(records));
  EXPECT_NE(json.find("\"name\":\"deliver\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":110"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":90"), std::string::npos) << json;
  EXPECT_NE(json.find("\"origin\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"node 1\""), std::string::npos) << json;
}

TEST(TraceMerge, ClosesNetworkOutageOnReinstatement) {
  constexpr auto kTimeout =
      static_cast<std::uint64_t>(rrp::NetworkFaultReport::Reason::kTokenTimeout);
  constexpr auto kReinstated =
      static_cast<std::uint64_t>(rrp::NetworkFaultReport::Reason::kReinstated);
  std::vector<TraceRecord> records;
  records.push_back(rec(120, TraceKind::kNetworkFault, 1, kTimeout, 2));
  records.push_back(rec(300, TraceKind::kNetworkFault, 1, kReinstated, 2));

  const std::string json = merge_to_chrome_trace(std::move(records));
  EXPECT_NE(json.find("\"name\":\"network-outage\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":180"), std::string::npos) << json;
  EXPECT_NE(json.find("\"network\":1"), std::string::npos) << json;
}

TEST(TraceMerge, RendersHealthTransitionsByName) {
  const auto pack = [](api::HealthState from, api::HealthState to) {
    return (static_cast<std::uint64_t>(from) << 8) |
           static_cast<std::uint64_t>(to);
  };
  std::vector<TraceRecord> records;
  records.push_back(rec(100, TraceKind::kHealthTransition, kHealthOverall,
                        pack(api::HealthState::kHealthy,
                             api::HealthState::kDegraded),
                        0));
  records.push_back(rec(200, TraceKind::kHealthTransition, /*network=*/1,
                        pack(api::HealthState::kDegraded,
                             api::HealthState::kFaulted),
                        0));

  const std::string json = merge_to_chrome_trace(std::move(records));
  EXPECT_NE(json.find("ring healthy->degraded"), std::string::npos) << json;
  EXPECT_NE(json.find("net1 degraded->faulted"), std::string::npos) << json;
}

TEST(TraceMerge, UnattributedRecordsLandOnSyntheticProcess) {
  std::vector<TraceRecord> records;
  records.push_back(
      rec(10, TraceKind::kTokenLoss, 0, 0, kInvalidNode));
  const std::string json = merge_to_chrome_trace(std::move(records));
  EXPECT_NE(json.find("\"unattributed\""), std::string::npos) << json;
}

}  // namespace
}  // namespace totem

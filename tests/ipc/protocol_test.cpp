// Codec + deframer unit tests for the totemd IPC wire protocol.
#include "ipc/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace totem::ipc {
namespace {

// Strip the [u32 len][u8 type] prefix, returning the body view.
BytesView body_of(const Bytes& frame) {
  return BytesView(frame).subspan(kLengthPrefixBytes + 1);
}

FrameType type_of(const Bytes& frame) {
  return static_cast<FrameType>(
      static_cast<std::uint8_t>(frame[kLengthPrefixBytes]));
}

TEST(IpcProtocol, HelloRoundTrip) {
  const Bytes f = encode_hello(Hello{7});
  EXPECT_EQ(type_of(f), FrameType::kHello);
  auto h = decode_hello(body_of(f));
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(h.value().version, 7u);
}

TEST(IpcProtocol, HelloAckRoundTrip) {
  HelloAck in;
  in.node = 3;
  in.client_id = 42;
  in.initial_credits = 64;
  in.max_message_bytes = 1u << 20;
  const Bytes f = encode_hello_ack(in);
  auto out = decode_hello_ack(body_of(f));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().node, 3u);
  EXPECT_EQ(out.value().client_id, 42u);
  EXPECT_EQ(out.value().initial_credits, 64u);
  EXPECT_EQ(out.value().max_message_bytes, 1u << 20);
}

TEST(IpcProtocol, JoinLeaveSendRoundTrip) {
  const Bytes j = encode_join(GroupRequest{9, "workers"});
  EXPECT_EQ(type_of(j), FrameType::kJoin);
  auto jr = decode_group_request(body_of(j));
  ASSERT_TRUE(jr.is_ok());
  EXPECT_EQ(jr.value().cookie, 9u);
  EXPECT_EQ(jr.value().group, "workers");

  const Bytes l = encode_leave(GroupRequest{10, "workers"});
  EXPECT_EQ(type_of(l), FrameType::kLeave);

  SendRequest sreq;
  sreq.cookie = 11;
  sreq.group = "workers";
  sreq.payload = to_bytes("payload bytes");
  const Bytes s = encode_send(sreq);
  auto sr = decode_send(body_of(s));
  ASSERT_TRUE(sr.is_ok());
  EXPECT_EQ(sr.value().cookie, 11u);
  EXPECT_EQ(sr.value().group, "workers");
  EXPECT_EQ(totem::to_string(sr.value().payload), "payload bytes");
}

TEST(IpcProtocol, StatusCreditDeliverRoundTrip) {
  const Bytes st = encode_status(StatusReply{5, StatusCode::kNotFound, "nope"});
  auto sr = decode_status(body_of(st));
  ASSERT_TRUE(sr.is_ok());
  EXPECT_EQ(sr.value().cookie, 5u);
  EXPECT_EQ(sr.value().code, StatusCode::kNotFound);
  EXPECT_EQ(sr.value().detail, "nope");

  const Bytes cr = encode_credit(Credit{3});
  auto c = decode_credit(body_of(cr));
  ASSERT_TRUE(c.is_ok());
  EXPECT_EQ(c.value().granted, 3u);

  Deliver d;
  d.group = "g";
  d.origin = ClientRef{2, 77};
  d.seq = 12345;
  d.payload = to_bytes("m");
  const Bytes df = encode_deliver(d);
  auto dr = decode_deliver(body_of(df));
  ASSERT_TRUE(dr.is_ok());
  EXPECT_EQ(dr.value().group, "g");
  EXPECT_EQ(dr.value().origin, (ClientRef{2, 77}));
  EXPECT_EQ(dr.value().seq, 12345u);
  EXPECT_EQ(totem::to_string(dr.value().payload), "m");
}

TEST(IpcProtocol, ViewRoundTripKeepsAllThreeRefLists) {
  View v;
  v.group = "workers";
  v.view_seq = 99;
  v.members = {{0, 1}, {0, 2}, {1, 7}};
  v.added = {{1, 7}};
  v.removed = {{2, 3}};
  const Bytes f = encode_view(v);
  auto out = decode_view(body_of(f));
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().group, "workers");
  EXPECT_EQ(out.value().view_seq, 99u);
  EXPECT_EQ(out.value().members, v.members);
  EXPECT_EQ(out.value().added, v.added);
  EXPECT_EQ(out.value().removed, v.removed);
}

TEST(IpcProtocol, GoodbyeRoundTrip) {
  const Bytes f = encode_goodbye(GoodbyeReason::kSlowReader);
  auto r = decode_goodbye(body_of(f));
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), GoodbyeReason::kSlowReader);
  EXPECT_STREQ(to_string(r.value()), "slow-reader");
}

TEST(IpcProtocol, DecodeRejectsTruncatedBodies) {
  const Bytes f = encode_hello_ack(HelloAck{1, 2, 3, 4});
  const BytesView body = body_of(f);
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(decode_hello_ack(body.subspan(0, cut)).is_ok())
        << "cut=" << cut;
  }
}

TEST(IpcProtocol, ViewRefCountCannotOverrunFrame) {
  // Hand-craft a view body whose member count claims more refs than the
  // frame carries: must fail cleanly, not over-read.
  ByteWriter w;
  w.u8(1);
  w.raw(to_bytes("g"));
  w.u64(1);          // view_seq
  w.u32(1'000'000);  // absurd member count
  const Bytes body = std::move(w).take();
  EXPECT_FALSE(decode_view(body).is_ok());
}

TEST(FrameBufferTest, ReassemblesFramesAcrossArbitrarySplits) {
  const Bytes a = encode_credit(Credit{1});
  const Bytes b = encode_join(GroupRequest{2, "group-name"});
  Bytes stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  for (std::size_t chunk = 1; chunk <= stream.size(); ++chunk) {
    FrameBuffer fb;
    std::vector<Frame> got;
    for (std::size_t off = 0; off < stream.size(); off += chunk) {
      const std::size_t n = std::min(chunk, stream.size() - off);
      fb.feed(stream.data() + off, n);
      while (auto f = fb.pop()) got.push_back(std::move(*f));
    }
    ASSERT_EQ(got.size(), 2u) << "chunk=" << chunk;
    EXPECT_EQ(got[0].type, FrameType::kCredit);
    EXPECT_EQ(got[1].type, FrameType::kJoin);
    auto req = decode_group_request(got[1].body);
    ASSERT_TRUE(req.is_ok());
    EXPECT_EQ(req.value().group, "group-name");
    EXPECT_FALSE(fb.corrupted());
    EXPECT_EQ(fb.buffered_bytes(), 0u);
  }
}

TEST(FrameBufferTest, OversizeLengthPoisonsTheBuffer) {
  FrameBuffer fb;
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(kMaxFrameBody + 1));
  const Bytes evil = std::move(w).take();
  fb.feed(evil.data(), evil.size());
  EXPECT_FALSE(fb.pop().has_value());
  EXPECT_TRUE(fb.corrupted());
  // Poisoned forever, even after valid bytes arrive.
  const Bytes ok = encode_credit(Credit{1});
  fb.feed(ok.data(), ok.size());
  EXPECT_FALSE(fb.pop().has_value());
  EXPECT_TRUE(fb.corrupted());
}

TEST(FrameBufferTest, ZeroLengthFrameIsCorrupt) {
  FrameBuffer fb;
  ByteWriter w;
  w.u32(0);  // a frame must at least carry its type byte
  const Bytes evil = std::move(w).take();
  fb.feed(evil.data(), evil.size());
  EXPECT_FALSE(fb.pop().has_value());
  EXPECT_TRUE(fb.corrupted());
}

TEST(FrameBufferTest, LargePayloadRoundTrips) {
  SendRequest req;
  req.cookie = 1;
  req.group = "big";
  req.payload.assign(1u << 20, std::byte{0x5a});  // 1 MiB
  const Bytes frame = encode_send(req);
  FrameBuffer fb;
  // Feed in 64 KB chunks like a socket would.
  for (std::size_t off = 0; off < frame.size(); off += 65536) {
    fb.feed(frame.data() + off, std::min<std::size_t>(65536, frame.size() - off));
  }
  auto f = fb.pop();
  ASSERT_TRUE(f.has_value());
  auto out = decode_send(f->body);
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value().payload.size(), 1u << 20);
  EXPECT_EQ(out.value().payload, req.payload);
}

}  // namespace
}  // namespace totem::ipc

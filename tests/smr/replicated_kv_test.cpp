// ReplicatedKv semantics: put/delete/CAS with per-key versions, canonical
// snapshots, restore round-trip and failure atomicity.
#include "smr/replicated_kv.h"

#include <gtest/gtest.h>

namespace totem::smr {
namespace {

KvResult apply_ok(ReplicatedKv& kv, const Bytes& cmd) {
  auto r = ReplicatedKv::decode_result(kv.apply(cmd));
  EXPECT_TRUE(r.is_ok());
  return r.is_ok() ? r.value() : KvResult{};
}

TEST(ReplicatedKv, PutBumpsVersions) {
  ReplicatedKv kv;
  auto r = apply_ok(kv, ReplicatedKv::encode_put("a", to_bytes("1")));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 1u);
  r = apply_ok(kv, ReplicatedKv::encode_put("a", to_bytes("2")));
  EXPECT_EQ(r.version, 2u);
  ASSERT_NE(kv.get("a"), nullptr);
  EXPECT_EQ(kv.get("a")->value, to_bytes("2"));
  EXPECT_EQ(kv.get("a")->version, 2u);
  EXPECT_EQ(kv.size(), 1u);
}

TEST(ReplicatedKv, DeleteExistingAndMissing) {
  ReplicatedKv kv;
  (void)kv.apply(ReplicatedKv::encode_put("a", to_bytes("x")));
  auto r = apply_ok(kv, ReplicatedKv::encode_del("a"));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(kv.get("a"), nullptr);
  r = apply_ok(kv, ReplicatedKv::encode_del("a"));
  EXPECT_FALSE(r.ok);
  // Re-created key restarts its version history.
  r = apply_ok(kv, ReplicatedKv::encode_put("a", to_bytes("y")));
  EXPECT_EQ(r.version, 1u);
}

TEST(ReplicatedKv, CasMatchesVersionExactly) {
  ReplicatedKv kv;
  // expected=0 means create-if-absent.
  auto r = apply_ok(kv, ReplicatedKv::encode_cas("k", 0, to_bytes("v1")));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 1u);
  // Stale expected version fails and reports the current one.
  r = apply_ok(kv, ReplicatedKv::encode_cas("k", 0, to_bytes("v2")));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.version, 1u);
  r = apply_ok(kv, ReplicatedKv::encode_cas("k", 1, to_bytes("v2")));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 2u);
  EXPECT_EQ(kv.get("k")->value, to_bytes("v2"));
  EXPECT_EQ(kv.stats().cas_ok, 2u);
  EXPECT_EQ(kv.stats().cas_fail, 1u);
}

TEST(ReplicatedKv, MalformedCommandIsDeterministicNoop) {
  ReplicatedKv kv;
  (void)kv.apply(ReplicatedKv::encode_put("a", to_bytes("x")));
  const Bytes before = kv.snapshot();
  auto r = apply_ok(kv, to_bytes("garbage"));
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(kv.snapshot(), before);
  EXPECT_GE(kv.stats().malformed, 1u);
}

TEST(ReplicatedKv, SnapshotRestoreRoundTripIsByteIdentical) {
  ReplicatedKv a;
  for (int i = 0; i < 100; ++i) {
    (void)a.apply(ReplicatedKv::encode_put("key" + std::to_string(i),
                                           to_bytes("val" + std::to_string(i * 3))));
  }
  (void)a.apply(ReplicatedKv::encode_del("key50"));
  (void)a.apply(ReplicatedKv::encode_cas("key7", 1, to_bytes("swapped")));
  const Bytes image = a.snapshot();
  ReplicatedKv b;
  ASSERT_TRUE(b.restore(image).is_ok());
  EXPECT_EQ(b.snapshot(), image);
  EXPECT_EQ(b.size(), 99u);
  ASSERT_NE(b.get("key7"), nullptr);
  EXPECT_EQ(b.get("key7")->value, to_bytes("swapped"));
  EXPECT_EQ(b.get("key7")->version, 2u);
  // Divergence-free continuation: identical commands keep identical bytes.
  (void)a.apply(ReplicatedKv::encode_put("post", to_bytes("p")));
  (void)b.apply(ReplicatedKv::encode_put("post", to_bytes("p")));
  EXPECT_EQ(a.snapshot(), b.snapshot());
}

TEST(ReplicatedKv, RestoreFailureLeavesMachineEmpty) {
  ReplicatedKv kv;
  (void)kv.apply(ReplicatedKv::encode_put("a", to_bytes("x")));
  Bytes image = kv.snapshot();
  image.pop_back();  // truncate
  ReplicatedKv other;
  (void)other.apply(ReplicatedKv::encode_put("junk", to_bytes("j")));
  EXPECT_FALSE(other.restore(image).is_ok());
  EXPECT_EQ(other.size(), 0u);
  // Trailing garbage also rejected.
  image = kv.snapshot();
  image.push_back(std::byte{0});
  EXPECT_FALSE(other.restore(image).is_ok());
  EXPECT_EQ(other.size(), 0u);
}

TEST(ReplicatedKv, DecodeResultRejectsTruncation) {
  auto r = ReplicatedKv::decode_result(to_bytes("x"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kMalformedPacket);
}

}  // namespace
}  // namespace totem::smr

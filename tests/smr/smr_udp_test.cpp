// SMR joiner convergence over REAL UDP sockets on loopback: the same
// ≥1000-applied-commands state-transfer scenario as the sim test, proving
// the transfer protocol is transport-independent (acceptance criterion:
// byte-identical snapshots on both transports).
//
// Runs once per batched datapath backend (mmsg and io_uring — the
// per-datagram fallback is covered by the lighter udp_ring matrix; this
// scenario is too slow to triple). The io_uring row skips with a reason
// when the kernel or build lacks it.
#include <gtest/gtest.h>

#include <memory>

#include "api/group_bus.h"
#include "api/node.h"
#include "net/datapath.h"
#include "net/reactor.h"
#include "net/udp_transport.h"
#include "smr/replicated_kv.h"
#include "smr/replicated_log.h"

namespace totem::smr {
namespace {

constexpr std::uint32_t kNodes = 3;
constexpr std::uint32_t kNetworks = 2;

struct UdpSmrRing {
  net::Reactor reactor;
  std::vector<std::unique_ptr<net::UdpTransport>> transports;
  std::vector<std::unique_ptr<api::Node>> nodes;
  std::vector<std::unique_ptr<api::GroupBus>> buses;
  std::vector<std::unique_ptr<ReplicatedKv>> kvs;
  std::vector<std::unique_ptr<ReplicatedLog>> logs;

  bool build(std::uint16_t base_port, net::DatapathBackend backend) {
    for (NodeId id = 0; id < kNodes; ++id) {
      std::vector<net::Transport*> node_transports;
      for (NetworkId n = 0; n < kNetworks; ++n) {
        net::UdpTransport::Config tc;
        tc.network = n;
        tc.local_node = id;
        tc.backend = backend;
        tc.require_backend = true;  // the fixture already skipped if absent
        tc.peers = net::loopback_peers(
            static_cast<std::uint16_t>(base_port + 100 * n +
                                       10 * static_cast<int>(backend)),
            kNodes);
        auto t = net::UdpTransport::create(reactor, tc);
        if (!t.is_ok()) {
          ADD_FAILURE() << t.status().to_string();
          return false;
        }
        transports.push_back(std::move(t).take());
        node_transports.push_back(transports.back().get());
      }
      api::NodeConfig cfg;
      cfg.srp.node_id = id;
      cfg.srp.initial_members = {0, 1, 2};
      cfg.style = api::ReplicationStyle::kActive;
      nodes.push_back(std::make_unique<api::Node>(reactor, node_transports, cfg));
      buses.push_back(std::make_unique<api::GroupBus>(*nodes.back()));
      kvs.push_back(std::make_unique<ReplicatedKv>());
      logs.push_back(std::make_unique<ReplicatedLog>(
          reactor, *buses.back(), *kvs.back(), ReplicatedLog::Config{}));
    }
    for (auto& n : nodes) n->start();
    return true;
  }

  void poll_for(Duration d) {
    const TimePoint deadline = reactor.now() + d;
    while (reactor.now() < deadline) reactor.poll_once(Duration{5'000});
  }

  bool poll_until(const std::function<bool()>& done, Duration cap) {
    const TimePoint deadline = reactor.now() + cap;
    while (reactor.now() < deadline) {
      if (done()) return true;
      reactor.poll_once(Duration{5'000});
    }
    return done();
  }
};

class SmrUdpBackends : public ::testing::TestWithParam<net::DatapathBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == net::DatapathBackend::kIoUring && !net::io_uring_available()) {
      GTEST_SKIP() << (net::io_uring_compiled()
                           ? "io_uring probe failed on this kernel"
                           : "io_uring backend not compiled in");
    }
  }
};

TEST_P(SmrUdpBackends, JoinerConvergesAfterThousandAppliedCommands) {
  UdpSmrRing ring;
  ASSERT_TRUE(ring.build(44200, GetParam()));

  // Replicas 0 and 1 form the group; 2 stays out for now.
  ASSERT_TRUE(ring.logs[0]->start().is_ok());
  ASSERT_TRUE(ring.logs[1]->start().is_ok());
  ASSERT_TRUE(ring.poll_until(
      [&] { return ring.logs[0]->live() && ring.logs[1]->live(); },
      Duration{10'000'000}))
      << "initial replicas never went live";

  // Apply >= 1000 commands before the joiner shows up. Submit in small
  // waves so the ring's send queue never backpressures.
  std::uint64_t submitted = 0;
  for (int wave = 0; submitted < 1000; ++wave) {
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t k = submitted;
      auto r = ring.logs[k % 2]->submit(ReplicatedKv::encode_put(
          "key" + std::to_string(k % 150), to_bytes("w" + std::to_string(k))));
      if (r.is_ok()) ++submitted;
    }
    ASSERT_TRUE(ring.poll_until(
        [&] {
          return ring.logs[0]->applied_seq() >= submitted &&
                 ring.logs[1]->applied_seq() >= submitted;
        },
        Duration{15'000'000}))
        << "wave " << wave << " stalled at " << ring.logs[0]->applied_seq();
  }
  ASSERT_GE(ring.logs[0]->applied_seq(), 1000u);
  ASSERT_EQ(ring.kvs[0]->snapshot(), ring.kvs[1]->snapshot());

  // Node 2 joins late and must converge to the byte-identical state.
  ASSERT_TRUE(ring.logs[2]->start().is_ok());
  ASSERT_TRUE(ring.poll_until([&] { return ring.logs[2]->live(); },
                              Duration{30'000'000}))
      << "joiner never went live";
  ring.poll_for(Duration{200'000});  // drain any tail traffic
  EXPECT_GE(ring.logs[2]->stats().snapshots_restored, 1u);
  EXPECT_GT(ring.logs[2]->stats().chunks_accepted, 1u);
  EXPECT_EQ(ring.logs[2]->applied_seq(), ring.logs[0]->applied_seq());
  EXPECT_EQ(ring.kvs[2]->snapshot(), ring.kvs[0]->snapshot());

  // And it participates: a CAS submitted by the joiner lands everywhere.
  const ReplicatedKv::Entry* e = ring.kvs[2]->get("key7");
  ASSERT_NE(e, nullptr);
  auto r = ring.logs[2]->submit(
      ReplicatedKv::encode_cas("key7", e->version, to_bytes("from-joiner")));
  ASSERT_TRUE(r.is_ok());
  ASSERT_TRUE(ring.poll_until(
      [&] {
        const auto* v0 = ring.kvs[0]->get("key7");
        return v0 != nullptr && v0->value == to_bytes("from-joiner");
      },
      Duration{10'000'000}));
  EXPECT_EQ(ring.kvs[2]->get("key7")->value, to_bytes("from-joiner"));
}

INSTANTIATE_TEST_SUITE_P(
    Datapaths, SmrUdpBackends,
    ::testing::Values(net::DatapathBackend::kMmsg, net::DatapathBackend::kIoUring),
    [](const ::testing::TestParamInfo<net::DatapathBackend>& info) {
      return info.param == net::DatapathBackend::kMmsg ? "Mmsg" : "IoUring";
    });

}  // namespace
}  // namespace totem::smr

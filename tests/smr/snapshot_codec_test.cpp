// Snapshot chunk wire format: round-trip, truncation/corruption rejection,
// and SnapshotAssembler duplicate/stale/inconsistency handling.
#include "smr/snapshot.h"

#include <gtest/gtest.h>

#include "common/crc32.h"

namespace totem::smr {
namespace {

Bytes make_image(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = static_cast<std::byte>(i * 31 + 7);
  return b;
}

TEST(SnapshotCodec, ChunkRoundTrip) {
  SnapshotChunk c;
  c.leader = 3;
  c.mark = 77;
  c.applied_seq = 1234;
  c.index = 2;
  c.count = 5;
  c.total_crc = 0xDEADBEEF;
  c.data = make_image(100);
  const Bytes wire = encode_chunk(c);
  auto back = decode_chunk(wire);
  ASSERT_TRUE(back.is_ok()) << back.status().to_string();
  EXPECT_EQ(back.value().leader, c.leader);
  EXPECT_EQ(back.value().mark, c.mark);
  EXPECT_EQ(back.value().applied_seq, c.applied_seq);
  EXPECT_EQ(back.value().index, c.index);
  EXPECT_EQ(back.value().count, c.count);
  EXPECT_EQ(back.value().total_crc, c.total_crc);
  EXPECT_EQ(back.value().data, c.data);
}

TEST(SnapshotCodec, TruncatedChunkRejected) {
  SnapshotChunk c;
  c.leader = 1;
  c.mark = 1;
  c.count = 1;
  c.data = make_image(64);
  const Bytes wire = encode_chunk(c);
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{20},
                          wire.size() - 1}) {
    auto r = decode_chunk(BytesView(wire).first(cut));
    ASSERT_FALSE(r.is_ok()) << "cut=" << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kMalformedPacket);
  }
}

TEST(SnapshotCodec, CorruptDataRejectedByChunkCrc) {
  SnapshotChunk c;
  c.leader = 1;
  c.mark = 9;
  c.count = 1;
  c.data = make_image(64);
  Bytes wire = encode_chunk(c);
  // Flip one payload byte (the data blob starts after the 32-byte header).
  wire[40] ^= std::byte{0x40};
  auto r = decode_chunk(wire);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kMalformedPacket);
}

TEST(SnapshotCodec, ZeroCountOrBadIndexRejected) {
  SnapshotChunk c;
  c.leader = 1;
  c.mark = 1;
  c.index = 0;
  c.count = 0;  // invalid
  auto r = decode_chunk(encode_chunk(c));
  ASSERT_FALSE(r.is_ok());
  c.count = 2;
  c.index = 2;  // out of range
  r = decode_chunk(encode_chunk(c));
  ASSERT_FALSE(r.is_ok());
}

TEST(SnapshotSplit, SplitsAndReassembles) {
  const Bytes image = make_image(2500);
  const auto chunks = split_snapshot(image, 0, 5, 42, 1000);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].data.size(), 1000u);
  EXPECT_EQ(chunks[2].data.size(), 500u);
  SnapshotAssembler asmb;
  // Out-of-order arrival is fine.
  EXPECT_EQ(asmb.add(chunks[2]), SnapshotAssembler::Accept::kAccepted);
  EXPECT_FALSE(asmb.complete());
  EXPECT_EQ(asmb.add(chunks[0]), SnapshotAssembler::Accept::kAccepted);
  EXPECT_EQ(asmb.add(chunks[1]), SnapshotAssembler::Accept::kAccepted);
  ASSERT_TRUE(asmb.complete());
  EXPECT_EQ(asmb.applied_seq(), 42u);
  auto out = asmb.assemble();
  ASSERT_TRUE(out.is_ok());
  EXPECT_EQ(out.value(), image);
}

TEST(SnapshotSplit, EmptySnapshotStillOneChunk) {
  const auto chunks = split_snapshot({}, 7, 1, 0, 900);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_TRUE(chunks[0].data.empty());
  SnapshotAssembler asmb;
  EXPECT_EQ(asmb.add(chunks[0]), SnapshotAssembler::Accept::kAccepted);
  ASSERT_TRUE(asmb.complete());
  auto out = asmb.assemble();
  ASSERT_TRUE(out.is_ok());
  EXPECT_TRUE(out.value().empty());
}

TEST(SnapshotAssembler, DuplicateAndStaleChunks) {
  const Bytes image = make_image(1800);
  const auto round1 = split_snapshot(image, 0, 1, 10, 1000);
  const auto round2 = split_snapshot(image, 0, 2, 10, 1000);
  SnapshotAssembler asmb;
  EXPECT_EQ(asmb.add(round2[0]), SnapshotAssembler::Accept::kAccepted);
  // Duplicate of an already-held index.
  EXPECT_EQ(asmb.add(round2[0]), SnapshotAssembler::Accept::kDuplicate);
  // Leftover chunk from a superseded round (older mark).
  EXPECT_EQ(asmb.add(round1[1]), SnapshotAssembler::Accept::kStale);
  EXPECT_EQ(asmb.add(round2[1]), SnapshotAssembler::Accept::kAccepted);
  EXPECT_TRUE(asmb.complete());
}

TEST(SnapshotAssembler, InconsistentHeaderIsCorrupt) {
  const Bytes image = make_image(1800);
  const auto chunks = split_snapshot(image, 0, 1, 10, 1000);
  SnapshotAssembler asmb;
  ASSERT_EQ(asmb.add(chunks[0]), SnapshotAssembler::Accept::kAccepted);
  SnapshotChunk evil = chunks[1];
  evil.applied_seq = 11;  // same round, contradictory header
  EXPECT_EQ(asmb.add(evil), SnapshotAssembler::Accept::kCorrupt);
  evil = chunks[1];
  evil.count = 3;
  EXPECT_EQ(asmb.add(evil), SnapshotAssembler::Accept::kCorrupt);
}

TEST(SnapshotAssembler, TotalCrcCatchesCrossRoundMix) {
  // Two different images, chunks mixed from both rounds of the same shape:
  // per-chunk CRCs pass, the total CRC must not.
  const Bytes a = make_image(1800);
  Bytes b = a;
  b[1700] ^= std::byte{1};
  auto ra = split_snapshot(a, 0, 1, 10, 1000);
  auto rb = split_snapshot(b, 0, 1, 10, 1000);
  // Forge rb's chunk into ra's round (same leader/mark/total_crc header, the
  // per-chunk payload CRC still matches its own data).
  SnapshotChunk forged = rb[1];
  forged.total_crc = ra[1].total_crc;
  SnapshotAssembler asmb;
  ASSERT_EQ(asmb.add(ra[0]), SnapshotAssembler::Accept::kAccepted);
  ASSERT_EQ(asmb.add(forged), SnapshotAssembler::Accept::kAccepted);
  ASSERT_TRUE(asmb.complete());
  auto out = asmb.assemble();
  ASSERT_FALSE(out.is_ok());
  EXPECT_EQ(out.status().code(), StatusCode::kMalformedPacket);
}

TEST(SnapshotAssembler, ResetForgetsEverything) {
  const auto chunks = split_snapshot(make_image(100), 2, 3, 4, 1000);
  SnapshotAssembler asmb;
  ASSERT_EQ(asmb.add(chunks[0]), SnapshotAssembler::Accept::kAccepted);
  ASSERT_TRUE(asmb.complete());
  asmb.reset();
  EXPECT_FALSE(asmb.in_progress());
  EXPECT_FALSE(asmb.complete());
  EXPECT_EQ(asmb.add(chunks[0]), SnapshotAssembler::Accept::kAccepted);
  EXPECT_TRUE(asmb.complete());
}

}  // namespace
}  // namespace totem::smr

// ReplicatedLog over a simulated cluster: founding, joiner state transfer
// (including the ≥1000-command acceptance scenario and lossy networks),
// crash/rejoin resync, and completion accounting.
#include "smr/replicated_log.h"

#include <gtest/gtest.h>

#include "harness/sim_cluster.h"
#include "smr/replicated_kv.h"

namespace totem::smr {
namespace {

struct SmrFixture : ::testing::Test {
  std::unique_ptr<harness::SimCluster> cluster;
  std::vector<std::unique_ptr<api::GroupBus>> buses;
  std::vector<std::unique_ptr<ReplicatedKv>> kvs;
  std::vector<std::unique_ptr<ReplicatedLog>> logs;
  std::vector<std::uint64_t> completions;  // per node
  std::vector<std::uint64_t> absorbed;     // completions with applied_locally=false
  std::uint64_t submitted = 0;

  void build(std::size_t nodes, std::size_t networks = 2,
             api::ReplicationStyle style = api::ReplicationStyle::kActive) {
    harness::ClusterConfig cfg;
    cfg.node_count = nodes;
    cfg.network_count = networks;
    cfg.style = style;
    cfg.srp.token_loss_timeout = Duration{100'000};
    cfg.srp.consensus_timeout = Duration{100'000};
    cluster = std::make_unique<harness::SimCluster>(cfg);
    completions.assign(nodes, 0);
    absorbed.assign(nodes, 0);
    for (std::size_t i = 0; i < nodes; ++i) {
      buses.push_back(std::make_unique<api::GroupBus>(cluster->node(i)));
      kvs.push_back(std::make_unique<ReplicatedKv>());
      logs.push_back(std::make_unique<ReplicatedLog>(
          cluster->simulator(), *buses[i], *kvs[i], ReplicatedLog::Config{}));
      logs[i]->set_completion_handler(
          [this, i](std::uint64_t, BytesView, bool applied_locally) {
            ++completions[i];
            if (!applied_locally) ++absorbed[i];
          });
    }
    cluster->start_all();
  }

  void start_logs(std::initializer_list<NodeId> nodes) {
    for (NodeId n : nodes) ASSERT_TRUE(logs[n]->start().is_ok());
  }

  void run(Duration d = Duration{500'000}) { cluster->run_for(d); }

  /// Submit `count` puts round-robin across `writers`, draining regularly.
  void pump(std::initializer_list<NodeId> writers, int count,
            const std::string& tag, int key_space = 200) {
    int k = 0;
    for (int i = 0; i < count; ++i) {
      const NodeId w = writers.begin()[i % writers.size()];
      auto r = logs[w]->submit(ReplicatedKv::encode_put(
          "key" + std::to_string(i % key_space),
          to_bytes(tag + "-" + std::to_string(i))));
      ASSERT_TRUE(r.is_ok()) << r.status().to_string() << " at " << i;
      if (++k % 64 == 0) run(Duration{100'000});
    }
    run(Duration{2'000'000});
  }

  void expect_converged(std::initializer_list<NodeId> nodes) {
    const NodeId ref = *nodes.begin();
    const Bytes ref_snap = kvs[ref]->snapshot();
    for (NodeId n : nodes) {
      EXPECT_TRUE(logs[n]->live()) << "node " << n << " not live";
      EXPECT_EQ(logs[n]->applied_seq(), logs[ref]->applied_seq())
          << "node " << n;
      EXPECT_EQ(kvs[n]->snapshot(), ref_snap)
          << "node " << n << " snapshot diverged";
    }
  }
};

TEST_F(SmrFixture, FounderIsLiveImmediatelyAndPeersSyncIn) {
  build(3);
  start_logs({0, 1, 2});
  run(Duration{1'000'000});
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_TRUE(logs[n]->live()) << "node " << n;
  }
  // Whoever joined first founded the group; the others restored its (empty)
  // snapshot.
  std::uint64_t restores = 0;
  for (NodeId n = 0; n < 3; ++n) restores += logs[n]->stats().snapshots_restored;
  EXPECT_GE(restores, 2u);
  pump({0, 1, 2}, 90, "w");
  expect_converged({0, 1, 2});
  EXPECT_EQ(logs[0]->applied_seq(), 90u);
  ASSERT_NE(kvs[2]->get("key3"), nullptr);
}

TEST_F(SmrFixture, JoinerConvergesAfterThousandAppliedCommands) {
  build(4);
  start_logs({0, 1, 2});
  run(Duration{1'000'000});
  pump({0, 1, 2}, 1000, "pre");
  ASSERT_GE(logs[0]->applied_seq(), 1000u);
  const Bytes established = kvs[0]->snapshot();
  ASSERT_GT(established.size(), 2000u);  // forces a multi-chunk transfer

  start_logs({3});
  run(Duration{3'000'000});
  expect_converged({0, 1, 2, 3});
  EXPECT_EQ(logs[3]->stats().snapshots_restored, 1u);
  EXPECT_GT(logs[3]->stats().chunks_accepted, 1u);  // really was chunked
  // The joiner keeps up with traffic after the transfer.
  pump({0, 3}, 100, "post");
  expect_converged({0, 1, 2, 3});
}

TEST_F(SmrFixture, JoinerConvergesWithTrafficInFlight) {
  build(4);
  start_logs({0, 1, 2});
  run(Duration{1'000'000});
  pump({0, 1, 2}, 300, "pre");
  // Start the joiner and KEEP WRITING while its transfer happens: the
  // post-mark commands must land in its replay buffer, not be lost.
  start_logs({3});
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(logs[i % 3]
                    ->submit(ReplicatedKv::encode_put(
                        "live" + std::to_string(i % 40), to_bytes("v")))
                    .is_ok());
    if (i % 24 == 0) run(Duration{100'000});
  }
  run(Duration{3'000'000});
  expect_converged({0, 1, 2, 3});
  EXPECT_GE(logs[3]->stats().commands_replayed +
                logs[3]->stats().commands_applied,
            1u);
}

TEST_F(SmrFixture, JoinerConvergesUnderActiveStyleLoss) {
  build(4, 2, api::ReplicationStyle::kActive);
  // One of the two redundant networks drops 20% of its packets for the
  // whole test: active replication masks it and the transfer still lands.
  cluster->network(0).set_loss_rate(0.20);
  start_logs({0, 1, 2});
  run(Duration{1'500'000});
  pump({0, 1, 2}, 300, "lossy");
  start_logs({3});
  run(Duration{5'000'000});
  expect_converged({0, 1, 2, 3});
  EXPECT_GE(logs[3]->stats().snapshots_restored, 1u);
}

TEST_F(SmrFixture, CrashedReplicaResyncsAfterMissingWrites) {
  build(4);
  start_logs({0, 1, 2, 3});
  run(Duration{1'500'000});
  pump({0, 1, 2, 3}, 200, "before");
  expect_converged({0, 1, 2, 3});

  cluster->crash(3);
  run(Duration{2'000'000});  // survivors re-form without node 3
  pump({0, 1, 2}, 200, "during");  // writes node 3 misses entirely

  cluster->reconnect(3);
  run(Duration{8'000'000});
  expect_converged({0, 1, 2, 3});
  // It came back through the sync machinery, not by silently staying live
  // with stale state: either it demoted on the ring merge or the round
  // audit caught the divergence.
  EXPECT_GE(logs[3]->stats().demotions + logs[3]->stats().divergence_alarms, 1u);
  EXPECT_GE(logs[3]->stats().snapshots_restored, 1u);
}

TEST_F(SmrFixture, EverySubmissionCompletesExactlyOnce) {
  build(3);
  start_logs({0, 1, 2});
  run(Duration{1'000'000});
  std::uint64_t submits = 0;
  for (int i = 0; i < 150; ++i) {
    auto r = logs[i % 3]->submit(
        ReplicatedKv::encode_put("c" + std::to_string(i), to_bytes("v")));
    ASSERT_TRUE(r.is_ok());
    ++submits;
    if (i % 32 == 0) run(Duration{100'000});
  }
  run(Duration{3'000'000});
  EXPECT_EQ(completions[0] + completions[1] + completions[2], submits);
  // All three were live by the time they submitted, so results came from
  // local applies.
  for (NodeId n = 0; n < 3; ++n) {
    EXPECT_EQ(logs[n]->stats().commands_submitted,
              completions[n]) << "node " << n;
  }
}

TEST_F(SmrFixture, SubmitBeforeStartIsRejected) {
  build(2);
  auto r = logs[0]->submit(ReplicatedKv::encode_put("a", to_bytes("b")));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SmrFixture, LeaderIsLowestEstablishedReplica) {
  build(3);
  start_logs({1, 2});  // node 0 stays out of the group entirely
  run(Duration{1'000'000});
  EXPECT_EQ(logs[1]->leader(), 1u);
  EXPECT_EQ(logs[2]->leader(), 1u);
  EXPECT_EQ(logs[1]->established_members(), (std::vector<NodeId>{1, 2}));
}

}  // namespace
}  // namespace totem::smr

// TimeoutAdvisor (rrp/timeout_advisor.h): adaptive token-timeout tuning
// from the observed srp.token_rotation_us histogram, plus the api::Node
// wiring that periodically applies the advice to the replicator.
#include <gtest/gtest.h>

#include "harness/calibration.h"
#include "harness/sim_cluster.h"
#include "net/link_profile.h"
#include "rrp/active_replicator.h"
#include "rrp/config.h"
#include "rrp/timeout_advisor.h"

namespace totem::rrp {
namespace {

TEST(TimeoutAdvisor, FallsBackUntilMinSamples) {
  MetricsRegistry reg;
  TimeoutAdvisor::Config cfg;
  cfg.min_samples = 4;
  cfg.headroom = 1.5;
  TimeoutAdvisor advisor(reg, cfg);

  const Duration fallback{2'000};
  EXPECT_EQ(advisor.advise(fallback), fallback) << "no samples yet";

  auto* h = reg.histogram("srp.token_rotation_us");
  h->record(3'000);
  h->record(3'000);
  h->record(3'000);
  EXPECT_EQ(advisor.advise(fallback), fallback) << "below min_samples";

  h->record(3'000);
  // p99 of identical samples is exactly the sample (clamped to max).
  EXPECT_EQ(advisor.advise(fallback), Duration{4'500}) << "1.5 * p99";
  EXPECT_EQ(advisor.samples(), 4u);
  EXPECT_DOUBLE_EQ(advisor.rotation_p99_us(), 3'000.0);
}

TEST(TimeoutAdvisor, ClampsAdviceToConfiguredBounds) {
  TimeoutAdvisor::Config cfg;
  cfg.min_samples = 1;
  cfg.min_timeout = Duration{500};
  cfg.max_timeout = Duration{10'000};

  MetricsRegistry fast;
  TimeoutAdvisor fast_advisor(fast, cfg);
  fast.histogram("srp.token_rotation_us")->record(10);
  EXPECT_EQ(fast_advisor.advise(Duration{2'000}), cfg.min_timeout)
      << "a very fast ring must not drive the timeout below the floor";

  MetricsRegistry slow;
  TimeoutAdvisor slow_advisor(slow, cfg);
  slow.histogram("srp.token_rotation_us")->record(5'000'000);
  EXPECT_EQ(slow_advisor.advise(Duration{2'000}), cfg.max_timeout)
      << "a degraded ring must not push the timeout past the ceiling";
}

// End to end: a WAN-profiled cluster (rotation ~100x the clean-LAN case)
// with adaptive tuning enabled must retune every node's replicator away
// from the paper's fixed 2 ms token timeout.
TEST(TimeoutAdvisor, NodeAppliesAdviceToTheReplicator) {
  harness::ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.net_params = harness::paper_net_params();
  cfg.host_costs = harness::paper_host_costs();
  harness::apply_paper_srp_costs(cfg.srp);
  cfg.srp.token_loss_timeout = Duration{500'000};
  cfg.srp.consensus_timeout = Duration{500'000};
  cfg.srp.commit_timeout = Duration{500'000};
  cfg.adaptive_timeout.enabled = true;
  cfg.adaptive_timeout.update_interval = Duration{100'000};
  cfg.adaptive_timeout.advisor.min_samples = 8;
  harness::SimCluster cluster(cfg);
  for (std::size_t n = 0; n < cluster.network_count(); ++n) {
    cluster.network(n).set_default_profile(net::LinkProfile::wan());
  }
  cluster.start_all();
  cluster.run_for(Duration{3'000'000});

  const Duration static_timeout = ActiveConfig{}.token_timeout;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const auto& node = cluster.node(i);
    ASSERT_NE(node.timeout_advisor(), nullptr);
    EXPECT_GE(node.timeout_advisor()->samples(),
              cfg.adaptive_timeout.advisor.min_samples)
        << "node " << i;
    const auto* rep = dynamic_cast<const ActiveReplicator*>(&node.replicator());
    ASSERT_NE(rep, nullptr);
    EXPECT_GT(rep->token_timeout(), static_timeout)
        << "node " << i << ": a ~100 ms rotation must stretch the 2 ms timeout";
    EXPECT_EQ(rep->token_timeout(), node.advised_token_timeout()) << "node " << i;
  }
}

// Disabled (the default) leaves the configured static timeout untouched.
TEST(TimeoutAdvisor, DisabledKeepsTheStaticTimeout) {
  harness::ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  harness::SimCluster cluster(cfg);
  cluster.start_all();
  cluster.run_for(Duration{1'000'000});
  const auto& node = cluster.node(0);
  EXPECT_EQ(node.timeout_advisor(), nullptr);
  const auto* rep = dynamic_cast<const ActiveReplicator*>(&node.replicator());
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->token_timeout(), ActiveConfig{}.token_timeout);
}

}  // namespace
}  // namespace totem::rrp

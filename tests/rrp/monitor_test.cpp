#include "rrp/monitor.h"

#include <gtest/gtest.h>

namespace totem::rrp {
namespace {

TEST(ReceptionMonitor, BalancedCountsNeverReport) {
  ReceptionMonitor m(2, 5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(m.record(0).empty());
    EXPECT_TRUE(m.record(1).empty());
  }
}

TEST(ReceptionMonitor, LaggingNetworkReportedOncePastThreshold) {
  ReceptionMonitor m(2, 5);
  std::vector<NetworkId> reported;
  for (int i = 0; i < 10; ++i) {
    auto r = m.record(0);
    reported.insert(reported.end(), r.begin(), r.end());
  }
  ASSERT_EQ(reported.size(), 1u);
  EXPECT_EQ(reported[0], 1);
  // Not reported again.
  EXPECT_TRUE(m.record(0).empty());
}

TEST(ReceptionMonitor, ThresholdIsStrict) {
  ReceptionMonitor m(2, 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(m.record(0).empty()) << "lag == threshold must not report";
  }
  EXPECT_FALSE(m.record(0).empty());
}

TEST(ReceptionMonitor, AgingClosesTheGap) {
  ReceptionMonitor m(2, 5);
  for (int i = 0; i < 4; ++i) m.record(0);
  EXPECT_EQ(m.lag(1), 4u);
  m.age();
  m.age();
  EXPECT_EQ(m.lag(1), 2u);
  // Now even 3 more receptions on net 0 stay under the threshold.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(m.record(0).empty());
  }
}

TEST(ReceptionMonitor, AgingNeverOvershoots) {
  ReceptionMonitor m(2, 5);
  m.record(0);
  for (int i = 0; i < 10; ++i) m.age();
  EXPECT_EQ(m.lag(1), 0u);
  EXPECT_EQ(m.counts()[1], m.counts()[0]);
}

TEST(ReceptionMonitor, ResetNetworkCatchesUpAndRearms) {
  ReceptionMonitor m(2, 3);
  for (int i = 0; i < 10; ++i) m.record(0);
  EXPECT_EQ(m.lag(1), 10u);
  m.reset_network(1);
  EXPECT_EQ(m.lag(1), 0u);
  // It can be reported again after a fresh divergence.
  std::vector<NetworkId> reported;
  for (int i = 0; i < 10; ++i) {
    auto r = m.record(0);
    reported.insert(reported.end(), r.begin(), r.end());
  }
  EXPECT_EQ(reported.size(), 1u);
}

TEST(ReceptionMonitor, ThreeNetworksReportIndividually) {
  ReceptionMonitor m(3, 2);
  auto r1 = m.record(0);
  auto r2 = m.record(0);
  auto r3 = m.record(0);  // lag(1) = lag(2) = 3 > 2
  EXPECT_TRUE(r1.empty());
  EXPECT_TRUE(r2.empty());
  ASSERT_EQ(r3.size(), 2u);
  EXPECT_EQ(r3[0], 1);
  EXPECT_EQ(r3[1], 2);
}

TEST(ReceptionMonitor, ReportedNetworksStopAging) {
  // Aging forgives sporadic loss on live networks; a network already
  // reported faulty must NOT creep back toward the leader, or lag() would
  // under-report the evidence in later fault reports.
  ReceptionMonitor m(2, 2);
  auto reported = m.record(0);
  for (int i = 0; i < 4 && reported.empty(); ++i) reported = m.record(0);
  ASSERT_EQ(reported.size(), 1u) << "network 1 should be reported faulty";
  const std::uint64_t evidence = m.lag(1);
  ASSERT_GT(evidence, 0u);

  for (int i = 0; i < 10; ++i) m.age();
  EXPECT_EQ(m.lag(1), evidence) << "a reported network's count must not age";

  // reset_network() remains the one road back: level with the leader again.
  m.reset_network(1);
  EXPECT_EQ(m.lag(1), 0u);
}

TEST(ReceptionMonitor, OutOfRangeNetworkIgnored) {
  ReceptionMonitor m(2, 5);
  EXPECT_TRUE(m.record(9).empty());
  EXPECT_EQ(m.lag(9), 0u);
  m.reset_network(9);  // no crash
}

}  // namespace
}  // namespace totem::rrp

// Unit tests for ActiveReplicator against the requirements of paper §5
// (A1-A6) and the Fig. 2 algorithm.
#include "rrp/active_replicator.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "srp/wire.h"
#include "testing/fake_transport.h"

namespace totem::rrp {
namespace {

using testing::FakeTransport;

Bytes make_token(std::uint64_t rotation, SeqNum seq, RingId ring = RingId{0, 4}) {
  srp::wire::Token t;
  t.ring = ring;
  t.sender = 1;
  t.rotation = rotation;
  t.seq = seq;
  return srp::wire::serialize_token(t);
}

Bytes make_message(SeqNum seq, RingId ring = RingId{0, 4}) {
  srp::wire::PacketHeader h{srp::wire::PacketType::kRegular, 1, ring};
  std::vector<srp::wire::MessageEntry> entries(1);
  entries[0].seq = seq;
  entries[0].origin = 1;
  entries[0].payload = Bytes(16, std::byte{9});
  return srp::wire::serialize_regular(h, entries);
}

struct ActiveFixture : ::testing::Test {
  sim::Simulator sim;
  FakeTransport t0{0, 7};
  FakeTransport t1{1, 7};
  FakeTransport t2{2, 7};
  std::unique_ptr<ActiveReplicator> rep;

  std::vector<Bytes> tokens_up;
  std::vector<Bytes> messages_up;
  std::vector<NetworkFaultReport> faults;

  void build(std::size_t networks = 2, ActiveConfig cfg = {}) {
    std::vector<net::Transport*> ts = {&t0, &t1, &t2};
    ts.resize(networks);
    rep = std::make_unique<ActiveReplicator>(sim, ts, cfg);
    rep->set_token_handler(
        [this](BytesView p, NetworkId) { tokens_up.emplace_back(p.begin(), p.end()); });
    rep->set_message_handler(
        [this](BytesView p, NetworkId) { messages_up.emplace_back(p.begin(), p.end()); });
    rep->set_fault_handler(
        [this](const NetworkFaultReport& r) { faults.push_back(r); });
  }
};

TEST_F(ActiveFixture, BroadcastFansOutToAllNetworks) {
  build(3);
  const Bytes msg = make_message(1);
  rep->broadcast_message(msg);
  EXPECT_EQ(t0.sent.size(), 1u);
  EXPECT_EQ(t1.sent.size(), 1u);
  EXPECT_EQ(t2.sent.size(), 1u);
  EXPECT_EQ(t0.sent[0].data, msg);
  EXPECT_FALSE(t0.sent[0].unicast_dest.has_value());
}

TEST_F(ActiveFixture, TokenFansOutAsUnicast) {
  build(2);
  rep->send_token(9, make_token(0, 0));
  ASSERT_EQ(t0.sent.size(), 1u);
  ASSERT_EQ(t1.sent.size(), 1u);
  EXPECT_EQ(t0.sent[0].unicast_dest, 9u);
  EXPECT_EQ(t1.sent[0].unicast_dest, 9u);
}

TEST_F(ActiveFixture, FaultyNetworkExcludedFromFanout) {
  build(3);
  rep->mark_faulty(1);
  rep->broadcast_message(make_message(1));
  rep->send_token(9, make_token(0, 0));
  EXPECT_EQ(t0.sent.size(), 2u);
  EXPECT_EQ(t1.sent.size(), 0u);
  EXPECT_EQ(t2.sent.size(), 2u);
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].reason, NetworkFaultReport::Reason::kAdministrative);
}

TEST_F(ActiveFixture, MessagesPassThroughImmediately) {
  // Requirement A1: deliver on first reception; the SRP dedupes.
  build(2);
  const Bytes msg = make_message(1);
  t0.inject(msg, 1);
  EXPECT_EQ(messages_up.size(), 1u);
  t1.inject(msg, 1);  // duplicate copy also goes up (SRP filters)
  EXPECT_EQ(messages_up.size(), 2u);
}

TEST_F(ActiveFixture, TokenHeldUntilAllCopiesArrive) {
  // Requirements A2/A3: the token passes only when every non-faulty network
  // has delivered its copy.
  build(2);
  const Bytes tok = make_token(1, 10);
  t0.inject(tok, 1);
  EXPECT_TRUE(tokens_up.empty());
  t1.inject(tok, 1);
  ASSERT_EQ(tokens_up.size(), 1u);
  EXPECT_EQ(tokens_up[0], tok);
}

TEST_F(ActiveFixture, ThreeNetworksNeedAllThreeCopies) {
  build(3);
  const Bytes tok = make_token(1, 10);
  t0.inject(tok, 1);
  t2.inject(tok, 1);
  EXPECT_TRUE(tokens_up.empty());
  t1.inject(tok, 1);
  EXPECT_EQ(tokens_up.size(), 1u);
}

TEST_F(ActiveFixture, DuplicateCopiesDeliverOnlyOnce) {
  build(2);
  const Bytes tok = make_token(1, 10);
  t0.inject(tok, 1);
  t1.inject(tok, 1);
  t0.inject(tok, 1);  // retained-token retransmission
  t1.inject(tok, 1);
  EXPECT_EQ(tokens_up.size(), 1u);
  EXPECT_GE(rep->stats().duplicate_tokens_absorbed, 2u);
}

TEST_F(ActiveFixture, TimerDeliversDespiteMissingCopy) {
  // Requirement A4: progress when a copy is lost.
  ActiveConfig cfg;
  cfg.token_timeout = Duration{2'000};
  build(2, cfg);
  t0.inject(make_token(1, 10), 1);
  EXPECT_TRUE(tokens_up.empty());
  sim.run_for(Duration{2'500});
  ASSERT_EQ(tokens_up.size(), 1u);
  EXPECT_EQ(rep->problem_counter(1), 1u);
  EXPECT_EQ(rep->problem_counter(0), 0u);
}

TEST_F(ActiveFixture, LateCopyAfterTimerDoesNotRedeliver) {
  build(2);
  const Bytes tok = make_token(1, 10);
  t0.inject(tok, 1);
  sim.run_for(Duration{3'000});  // timer fires, token delivered
  ASSERT_EQ(tokens_up.size(), 1u);
  t1.inject(tok, 1);  // the missing copy finally arrives
  EXPECT_EQ(tokens_up.size(), 1u);
}

TEST_F(ActiveFixture, FreshRingFirstTokenDeliveredImmediately) {
  ActiveConfig cfg;
  cfg.token_timeout = Duration{2'000};
  build(2, cfg);
  const Bytes old_tok = make_token(5, 9);  // ring {0,4}
  t0.inject(old_tok, 1);
  t1.inject(old_tok, 1);
  ASSERT_EQ(tokens_up.size(), 1u);

  // A membership change installs ring {0,8}; its first token restarts at
  // (rotation 0, seq 0) and must pass immediately rather than wait for a
  // copy on every network.
  const Bytes fresh = make_token(0, 0, RingId{0, 8});
  t0.inject(fresh, 1);
  EXPECT_EQ(tokens_up.size(), 2u)
      << "the first token of a freshly installed ring must not be held back";

  // A straggler resend of the dead ring's token and a late fresh copy are
  // both absorbed without restarting the collection.
  t1.inject(old_tok, 1);
  t1.inject(fresh, 1);
  EXPECT_EQ(tokens_up.size(), 2u);

  // No timer may be pending and no healthy network may take blame for the
  // ring change.
  sim.run_for(Duration{10'000});
  EXPECT_EQ(tokens_up.size(), 2u);
  EXPECT_EQ(rep->stats().token_timer_expiries, 0u);
  EXPECT_EQ(rep->problem_counter(0), 0u);
  EXPECT_EQ(rep->problem_counter(1), 0u)
      << "a healthy network must not be blamed across a ring change";
}

TEST_F(ActiveFixture, RepeatedTimeoutsDeclareNetworkFaulty) {
  // Requirement A5: permanent failure is eventually detected.
  ActiveConfig cfg;
  cfg.token_timeout = Duration{1'000};
  cfg.problem_threshold = 4;
  cfg.decay_interval = Duration{10'000'000};  // effectively off
  build(2, cfg);
  for (std::uint64_t r = 1; r <= 4; ++r) {
    t0.inject(make_token(r, 10 * r), 1);  // network 1 never delivers
    sim.run_for(Duration{1'500});
  }
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].network, 1);
  EXPECT_EQ(faults[0].reason, NetworkFaultReport::Reason::kTokenTimeout);
  EXPECT_TRUE(rep->network_faulty(1));
  EXPECT_FALSE(rep->network_faulty(0));

  // After the fault, tokens pass without waiting for network 1 and without
  // the timer delay.
  tokens_up.clear();
  t0.inject(make_token(9, 100), 1);
  EXPECT_EQ(tokens_up.size(), 1u);
}

TEST_F(ActiveFixture, DecayPreventsFalsePositiveFromSporadicLoss) {
  // Requirement A6: sporadic token loss must not accumulate into a fault.
  ActiveConfig cfg;
  cfg.token_timeout = Duration{1'000};
  cfg.problem_threshold = 4;
  cfg.decay_interval = Duration{20'000};
  build(2, cfg);
  // One lost copy every 50 ms: decay (every 20 ms) outpaces the increments.
  for (std::uint64_t r = 1; r <= 20; ++r) {
    t0.inject(make_token(r, 10 * r), 1);
    sim.run_for(Duration{1'500});  // timer fires, counter++
    const Bytes tok2 = make_token(r * 100 + 1, 10 * r + 5);
    t0.inject(tok2, 1);  // healthy rounds in between
    t1.inject(tok2, 1);
    sim.run_for(Duration{48'500});
  }
  EXPECT_TRUE(faults.empty());
  EXPECT_FALSE(rep->network_faulty(1));
}

TEST_F(ActiveFixture, StaleOlderTokenIgnored) {
  build(2);
  const Bytes newer = make_token(5, 50);
  t0.inject(newer, 1);
  t1.inject(newer, 1);
  ASSERT_EQ(tokens_up.size(), 1u);
  // An old retransmission straggles in; it must not restart collection.
  t0.inject(make_token(4, 40), 1);
  sim.run_for(Duration{10'000});
  EXPECT_EQ(tokens_up.size(), 1u);
}

TEST_F(ActiveFixture, NewRingResetsTokenOrdering) {
  build(2);
  const Bytes old_ring_tok = make_token(9, 90, RingId{0, 4});
  t0.inject(old_ring_tok, 1);
  t1.inject(old_ring_tok, 1);
  ASSERT_EQ(tokens_up.size(), 1u);
  // A new ring's token restarts at rotation 0, seq 0 and must be accepted.
  const Bytes new_ring_tok = make_token(0, 0, RingId{0, 8});
  t0.inject(new_ring_tok, 1);
  t1.inject(new_ring_tok, 1);
  EXPECT_EQ(tokens_up.size(), 2u);
}

TEST_F(ActiveFixture, ResetNetworkRejoinsFanout) {
  build(2);
  rep->mark_faulty(0);
  rep->broadcast_message(make_message(1));
  EXPECT_EQ(t0.sent.size(), 0u);
  rep->reset_network(0);
  EXPECT_FALSE(rep->network_faulty(0));
  rep->broadcast_message(make_message(2));
  EXPECT_EQ(t0.sent.size(), 1u);
  // And tokens wait for it again.
  const Bytes tok = make_token(1, 10);
  t1.inject(tok, 1);
  EXPECT_TRUE(tokens_up.empty());
  t0.inject(tok, 1);
  EXPECT_EQ(tokens_up.size(), 1u);
}

TEST_F(ActiveFixture, StaleTokensEarnNoRecoveryCredit) {
  // Requirement A6's traffic-proportional decay must only reward copies of
  // the CURRENT token: a dead network replaying an old token proves
  // nothing about its health and must not decay its problem counter.
  ActiveConfig cfg;
  cfg.token_timeout = Duration{1'000};
  cfg.recovery_credit_period = 1;  // every credited copy decrements by one
  build(2, cfg);

  // Network 1 misses a token: the timer charges it one problem point.
  t0.inject(make_token(1, 10), 1);
  sim.run_for(Duration{1'500});
  ASSERT_EQ(rep->problem_counter(1), 1u);

  // A newer token arrives on network 0; the old (1, 10) token is now stale.
  t0.inject(make_token(2, 20), 1);

  // Network 1 replays the stale token. With credit granted before
  // classification this would erase the problem point.
  t1.inject(make_token(1, 10), 1);
  t1.inject(make_token(1, 10), 1);
  EXPECT_EQ(rep->problem_counter(1), 1u)
      << "stale retransmissions must not earn recovery credit";

  // A copy of the CURRENT token does earn the credit.
  t1.inject(make_token(2, 20), 1);
  EXPECT_EQ(rep->problem_counter(1), 0u);
}

TEST_F(ActiveFixture, MalformedPacketsIgnored) {
  build(2);
  Bytes garbage(40, std::byte{0xEE});
  t0.inject(garbage, 1);
  EXPECT_TRUE(tokens_up.empty());
  EXPECT_TRUE(messages_up.empty());
}

}  // namespace
}  // namespace totem::rrp

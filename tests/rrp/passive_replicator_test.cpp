// Unit tests for PassiveReplicator against the requirements of paper §6
// (P1-P5) and the Fig. 4/5 algorithms.
#include "rrp/passive_replicator.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "srp/wire.h"
#include "testing/fake_transport.h"

namespace totem::rrp {
namespace {

using testing::FakeTransport;

Bytes make_token(std::uint64_t rotation, SeqNum seq) {
  srp::wire::Token t;
  t.ring = RingId{0, 4};
  t.sender = 1;
  t.rotation = rotation;
  t.seq = seq;
  return srp::wire::serialize_token(t);
}

Bytes make_message(SeqNum seq, NodeId sender = 1) {
  srp::wire::PacketHeader h{srp::wire::PacketType::kRegular, sender, RingId{0, 4}};
  std::vector<srp::wire::MessageEntry> entries(1);
  entries[0].seq = seq;
  entries[0].origin = sender;
  entries[0].payload = Bytes(16, std::byte{9});
  return srp::wire::serialize_regular(h, entries);
}

struct PassiveFixture : ::testing::Test {
  sim::Simulator sim;
  FakeTransport t0{0, 7};
  FakeTransport t1{1, 7};
  FakeTransport t2{2, 7};
  std::unique_ptr<PassiveReplicator> rep;

  std::vector<Bytes> tokens_up;
  std::vector<Bytes> messages_up;
  std::vector<NetworkFaultReport> faults;
  SeqNum srp_aru = 1'000'000;  // default: nothing missing
  SeqNum srp_high = 0;

  void build(std::size_t networks = 2, PassiveConfig cfg = {}) {
    std::vector<net::Transport*> ts = {&t0, &t1, &t2};
    ts.resize(networks);
    rep = std::make_unique<PassiveReplicator>(sim, ts, cfg);
    rep->set_token_handler(
        [this](BytesView p, NetworkId) { tokens_up.emplace_back(p.begin(), p.end()); });
    rep->set_message_handler(
        [this](BytesView p, NetworkId) { messages_up.emplace_back(p.begin(), p.end()); });
    rep->set_fault_handler([this](const NetworkFaultReport& r) { faults.push_back(r); });
    // Mirrors SingleRing::any_messages_missing().
    rep->set_missing_query([this](SeqNum token_seq) {
      return srp_aru < std::max(srp_high, token_seq);
    });
  }
};

TEST_F(PassiveFixture, MessagesRoundRobinOverNetworks) {
  build(2);
  for (int i = 0; i < 4; ++i) rep->broadcast_message(make_message(i + 1));
  EXPECT_EQ(t0.sent.size(), 2u);
  EXPECT_EQ(t1.sent.size(), 2u);
}

TEST_F(PassiveFixture, TokensRoundRobinIndependently) {
  build(2);
  rep->broadcast_message(make_message(1));  // uses one network
  rep->send_token(9, make_token(0, 1));
  rep->send_token(9, make_token(1, 1));
  // Tokens alternate regardless of message cursor position.
  std::size_t t0_tokens = 0, t1_tokens = 0;
  for (const auto& s : t0.sent) {
    if (s.unicast_dest) ++t0_tokens;
  }
  for (const auto& s : t1.sent) {
    if (s.unicast_dest) ++t1_tokens;
  }
  EXPECT_EQ(t0_tokens, 1u);
  EXPECT_EQ(t1_tokens, 1u);
}

TEST_F(PassiveFixture, FaultyNetworkSkippedInRotation) {
  build(3);
  rep->mark_faulty(1);
  for (int i = 0; i < 4; ++i) rep->broadcast_message(make_message(i + 1));
  EXPECT_EQ(t0.sent.size(), 2u);
  EXPECT_EQ(t1.sent.size(), 0u);
  EXPECT_EQ(t2.sent.size(), 2u);
}

TEST_F(PassiveFixture, AllNetworksFaultyStillAttemptsNetworkZero) {
  build(2);
  rep->mark_faulty(0);
  rep->mark_faulty(1);
  rep->broadcast_message(make_message(1));
  EXPECT_EQ(t0.sent.size(), 1u);  // last-ditch attempt
}

TEST_F(PassiveFixture, TokenPassesWhenNothingMissing) {
  build(2);
  const Bytes tok = make_token(1, 10);
  t0.inject(tok, 1);
  ASSERT_EQ(tokens_up.size(), 1u);
  EXPECT_EQ(tokens_up[0], tok);
}

TEST_F(PassiveFixture, TokenBufferedWhileMessagesOutstanding) {
  // Requirement P1 (Fig. 3 scenario 1): the token overtook a message that is
  // still in flight on the other network — it must NOT reach the SRP yet.
  build(2);
  srp_aru = 9;  // we have messages up to 9; token says seq 10
  t1.inject(make_token(1, 10), 1);
  EXPECT_TRUE(tokens_up.empty());

  // The delayed message arrives; the SRP is whole again; the token flushes.
  srp_aru = 10;
  t0.inject(make_message(10), 1);
  EXPECT_EQ(messages_up.size(), 1u);
  ASSERT_EQ(tokens_up.size(), 1u);
}

TEST_F(PassiveFixture, BufferTimerForcesProgressWhenMessageReallyLost) {
  // Requirement P3: if the message was genuinely lost, the token must still
  // pass (the SRP will then request a retransmission — the paper's stated
  // cost of passive replication).
  PassiveConfig cfg;
  cfg.token_buffer_timeout = Duration{10'000};  // the paper's 10 ms
  build(2, cfg);
  srp_aru = 9;
  t1.inject(make_token(1, 10), 1);
  EXPECT_TRUE(tokens_up.empty());
  sim.run_for(Duration{9'000});
  EXPECT_TRUE(tokens_up.empty());
  sim.run_for(Duration{2'000});
  ASSERT_EQ(tokens_up.size(), 1u);
  EXPECT_EQ(rep->stats().token_timer_expiries, 1u);
}

TEST_F(PassiveFixture, NewerTokenSupersedesBufferedOne) {
  build(2);
  srp_aru = 9;
  t1.inject(make_token(1, 10), 1);
  EXPECT_TRUE(tokens_up.empty());
  // Next rotation's token arrives with everything resolved up to 10 but we
  // are still missing; the buffer keeps the newest token.
  const Bytes tok2 = make_token(2, 12);
  t0.inject(tok2, 1);
  srp_aru = 12;
  srp_high = 12;
  t1.inject(make_message(12, 2), 2);
  ASSERT_EQ(tokens_up.size(), 1u);
  EXPECT_EQ(tokens_up[0], tok2);
}

TEST_F(PassiveFixture, UnrelatedMessageDoesNotFlushWhileStillMissing) {
  build(2);
  srp_aru = 5;
  srp_high = 8;
  t1.inject(make_token(1, 10), 1);
  t0.inject(make_message(7), 1);  // does not complete the gap
  EXPECT_TRUE(tokens_up.empty());
}

TEST_F(PassiveFixture, ImbalanceMonitorDeclaresLaggingNetworkFaulty) {
  // Requirement P4 via the Fig. 5 per-sender message monitor.
  PassiveConfig cfg;
  cfg.imbalance_threshold = 10;
  cfg.aging_interval = Duration{10'000'000};  // off
  build(2, cfg);
  // Node 1's messages only ever arrive on network 0 (its path to us on
  // network 1 is dead).
  for (SeqNum s = 1; s <= 12; ++s) {
    t0.inject(make_message(s, 1), 1);
  }
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].network, 1);
  EXPECT_EQ(faults[0].reason, NetworkFaultReport::Reason::kReceptionImbalance);
  EXPECT_TRUE(rep->network_faulty(1));
}

TEST_F(PassiveFixture, TokenMonitorAlsoDetectsFaults) {
  PassiveConfig cfg;
  cfg.imbalance_threshold = 5;
  cfg.aging_interval = Duration{10'000'000};
  build(2, cfg);
  for (std::uint64_t r = 1; r <= 7; ++r) {
    t0.inject(make_token(r, 0), 1);
  }
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].network, 1);
}

TEST_F(PassiveFixture, BalancedTrafficRaisesNoFaults) {
  PassiveConfig cfg;
  cfg.imbalance_threshold = 10;
  build(2, cfg);
  for (SeqNum s = 1; s <= 100; ++s) {
    (s % 2 == 0 ? t0 : t1).inject(make_message(s, 1), 1);
  }
  EXPECT_TRUE(faults.empty());
}

TEST_F(PassiveFixture, AgingForgivesSporadicLoss) {
  // Requirement P5: a 1-in-20 loss rate on network 1 must never accumulate
  // into a fault, because aging bumps the lagging count between batches.
  PassiveConfig cfg;
  cfg.imbalance_threshold = 10;
  cfg.aging_interval = Duration{1'000};
  build(2, cfg);
  SeqNum s = 1;
  for (int round = 0; round < 100; ++round) {
    // 20 messages alternate networks; network 1 drops one.
    for (int i = 0; i < 10; ++i) t0.inject(make_message(s++, 1), 1);
    for (int i = 0; i < 9; ++i) t1.inject(make_message(s++, 1), 1);
    sim.run_for(Duration{2'000});  // a couple of aging ticks
  }
  EXPECT_TRUE(faults.empty());
  EXPECT_FALSE(rep->network_faulty(1));
}

TEST_F(PassiveFixture, WithoutAgingTheSameLossWouldTrip) {
  // Companion to AgingForgivesSporadicLoss: proves aging is load-bearing.
  PassiveConfig cfg;
  cfg.imbalance_threshold = 10;
  cfg.aging_interval = Duration{10'000'000};  // off
  build(2, cfg);
  SeqNum s = 1;
  for (int round = 0; round < 100 && faults.empty(); ++round) {
    for (int i = 0; i < 10; ++i) t0.inject(make_message(s++, 1), 1);
    for (int i = 0; i < 9; ++i) t1.inject(make_message(s++, 1), 1);
    sim.run_for(Duration{2'000});
  }
  EXPECT_FALSE(faults.empty());
}

TEST_F(PassiveFixture, PerSenderMonitorsAreIndependent) {
  PassiveConfig cfg;
  cfg.imbalance_threshold = 10;
  cfg.aging_interval = Duration{10'000'000};
  build(2, cfg);
  // Eleven nodes each send one message on network 0 only: no single
  // sender's monitor crosses the threshold.
  for (NodeId sender = 1; sender <= 11; ++sender) {
    t0.inject(make_message(1, sender), sender);
  }
  EXPECT_TRUE(faults.empty());
}

TEST_F(PassiveFixture, ResetNetworkClearsFaultAndMonitors) {
  PassiveConfig cfg;
  cfg.imbalance_threshold = 5;
  cfg.aging_interval = Duration{10'000'000};
  build(2, cfg);
  for (SeqNum s = 1; s <= 7; ++s) t0.inject(make_message(s, 1), 1);
  ASSERT_TRUE(rep->network_faulty(1));
  rep->reset_network(1);
  EXPECT_FALSE(rep->network_faulty(1));
  // Balanced traffic after repair: no immediate re-trip.
  for (SeqNum s = 8; s <= 20; ++s) {
    (s % 2 == 0 ? t0 : t1).inject(make_message(s, 1), 1);
  }
  EXPECT_FALSE(rep->network_faulty(1));
}

TEST_F(PassiveFixture, FlushedBufferedTokenReportsItsArrivalNetwork) {
  // A buffered token must be delivered tagged with the network it actually
  // arrived on — not a hardcoded network 0 — or traces and reception stats
  // misattribute every late token to network 0.
  build(2);
  std::vector<NetworkId> token_nets;
  rep->set_token_handler(
      [&](BytesView, NetworkId n) { token_nets.push_back(n); });

  srp_aru = 9;  // token seq 10 implies a message we do not have yet
  t1.inject(make_token(1, 10), 1);
  EXPECT_TRUE(token_nets.empty()) << "token must be buffered first";

  srp_aru = 10;
  t0.inject(make_message(10), 1);  // the message arrives on network 0
  ASSERT_EQ(token_nets.size(), 1u);
  EXPECT_EQ(token_nets[0], 1) << "flush must report the token's network";
}

TEST_F(PassiveFixture, TimedOutBufferedTokenReportsItsArrivalNetwork) {
  PassiveConfig cfg;
  cfg.token_buffer_timeout = Duration{10'000};
  build(2, cfg);
  std::vector<NetworkId> token_nets;
  rep->set_token_handler(
      [&](BytesView, NetworkId n) { token_nets.push_back(n); });

  srp_aru = 9;
  t1.inject(make_token(1, 10), 1);
  sim.run_for(Duration{11'000});  // message never arrives; timer fires
  ASSERT_EQ(token_nets.size(), 1u);
  EXPECT_EQ(token_nets[0], 1) << "timer path must report the token's network";
}

TEST_F(PassiveFixture, BandwidthConsumptionEqualsUnreplicated) {
  // Paper §4: passive replication's bandwidth consumption equals that of an
  // unreplicated system — exactly one copy per message.
  build(3);
  for (int i = 0; i < 30; ++i) rep->broadcast_message(make_message(i + 1));
  EXPECT_EQ(t0.sent.size() + t1.sent.size() + t2.sent.size(), 30u);
}

}  // namespace
}  // namespace totem::rrp

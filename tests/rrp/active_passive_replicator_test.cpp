// Unit tests for ActivePassiveReplicator (paper §7): K-of-N sending and the
// two-stage receive pipeline.
#include "rrp/active_passive_replicator.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "srp/wire.h"
#include "testing/fake_transport.h"

namespace totem::rrp {
namespace {

using testing::FakeTransport;

Bytes make_token(std::uint64_t rotation, SeqNum seq, RingId ring = RingId{0, 4}) {
  srp::wire::Token t;
  t.ring = ring;
  t.sender = 1;
  t.rotation = rotation;
  t.seq = seq;
  return srp::wire::serialize_token(t);
}

Bytes make_message(SeqNum seq, NodeId sender = 1) {
  srp::wire::PacketHeader h{srp::wire::PacketType::kRegular, sender, RingId{0, 4}};
  std::vector<srp::wire::MessageEntry> entries(1);
  entries[0].seq = seq;
  entries[0].origin = sender;
  entries[0].payload = Bytes(8, std::byte{3});
  return srp::wire::serialize_regular(h, entries);
}

struct ApFixture : ::testing::Test {
  sim::Simulator sim;
  FakeTransport t0{0, 7};
  FakeTransport t1{1, 7};
  FakeTransport t2{2, 7};
  FakeTransport t3{3, 7};
  std::unique_ptr<ActivePassiveReplicator> rep;

  std::vector<Bytes> tokens_up;
  std::vector<Bytes> messages_up;
  std::vector<NetworkFaultReport> faults;

  void build(std::size_t networks = 3, std::uint32_t k = 2,
             ActivePassiveConfig base = {}) {
    base.k = k;
    std::vector<net::Transport*> ts = {&t0, &t1, &t2, &t3};
    ts.resize(networks);
    rep = std::make_unique<ActivePassiveReplicator>(sim, ts, base);
    rep->set_token_handler(
        [this](BytesView p, NetworkId) { tokens_up.emplace_back(p.begin(), p.end()); });
    rep->set_message_handler(
        [this](BytesView p, NetworkId) { messages_up.emplace_back(p.begin(), p.end()); });
    rep->set_fault_handler([this](const NetworkFaultReport& r) { faults.push_back(r); });
  }

  [[nodiscard]] std::size_t total_sent() const {
    return t0.sent.size() + t1.sent.size() + t2.sent.size() + t3.sent.size();
  }
};

TEST_F(ApFixture, SendsExactlyKCopies) {
  build(3, 2);
  rep->broadcast_message(make_message(1));
  EXPECT_EQ(total_sent(), 2u);
  rep->broadcast_message(make_message(2));
  EXPECT_EQ(total_sent(), 4u);
}

TEST_F(ApFixture, WindowRotatesAcrossAllNetworks) {
  build(3, 2);
  for (int i = 0; i < 3; ++i) rep->broadcast_message(make_message(i + 1));
  // 3 messages x K=2 = 6 sends spread evenly over 3 networks.
  EXPECT_EQ(t0.sent.size(), 2u);
  EXPECT_EQ(t1.sent.size(), 2u);
  EXPECT_EQ(t2.sent.size(), 2u);
}

TEST_F(ApFixture, KOfFourNetworks) {
  build(4, 3);
  for (int i = 0; i < 4; ++i) rep->broadcast_message(make_message(i + 1));
  EXPECT_EQ(total_sent(), 12u);
  EXPECT_EQ(t0.sent.size(), 3u);
  EXPECT_EQ(t1.sent.size(), 3u);
  EXPECT_EQ(t2.sent.size(), 3u);
  EXPECT_EQ(t3.sent.size(), 3u);
}

TEST_F(ApFixture, FaultyNetworkSkippedKeepingKCopies) {
  build(3, 2);
  rep->mark_faulty(1);
  for (int i = 0; i < 2; ++i) rep->broadcast_message(make_message(i + 1));
  EXPECT_EQ(t1.sent.size(), 0u);
  EXPECT_EQ(t0.sent.size() + t2.sent.size(), 4u);  // still K copies each
}

TEST_F(ApFixture, TokenDeliveredAfterKCopies) {
  build(3, 2);
  const Bytes tok = make_token(1, 10);
  t0.inject(tok, 1);
  EXPECT_TRUE(tokens_up.empty());
  t2.inject(tok, 1);
  ASSERT_EQ(tokens_up.size(), 1u);
  // The third (unsent) copy never arrives and nothing further happens.
  sim.run_for(Duration{10'000});
  EXPECT_EQ(tokens_up.size(), 1u);
}

TEST_F(ApFixture, TimeoutDeliversSingleCopy) {
  ActivePassiveConfig base;
  base.token_timeout = Duration{2'000};
  build(3, 2, base);
  t1.inject(make_token(1, 10), 1);
  EXPECT_TRUE(tokens_up.empty());
  sim.run_for(Duration{2'500});
  EXPECT_EQ(tokens_up.size(), 1u);
  EXPECT_EQ(rep->stats().token_timer_expiries, 1u);
}

TEST_F(ApFixture, MessagesPassThroughImmediately) {
  build(3, 2);
  t0.inject(make_message(1), 1);
  t1.inject(make_message(1), 1);  // second copy also passes (SRP dedupes)
  EXPECT_EQ(messages_up.size(), 2u);
}

TEST_F(ApFixture, Stage1MonitorDetectsDeadNetwork) {
  ActivePassiveConfig base;
  base.monitor.imbalance_threshold = 10;
  base.monitor.aging_interval = Duration{10'000'000};
  build(3, 2, base);
  // Messages from node 1 arrive on networks 0 and 2 but never on 1.
  SeqNum s = 1;
  for (int i = 0; i < 12; ++i) {
    t0.inject(make_message(s, 1), 1);
    t2.inject(make_message(s, 1), 1);
    ++s;
  }
  ASSERT_FALSE(faults.empty());
  EXPECT_EQ(faults[0].network, 1);
  EXPECT_TRUE(rep->network_faulty(1));
}

TEST_F(ApFixture, EffectiveKDropsWithFaultyNetworks) {
  build(3, 2);
  rep->mark_faulty(0);
  rep->mark_faulty(1);
  // Only one healthy network left: a single copy must suffice.
  t2.inject(make_token(1, 10), 1);
  EXPECT_EQ(tokens_up.size(), 1u);
}

TEST_F(ApFixture, FreshRingFirstTokenDeliveredImmediately) {
  ActivePassiveConfig base;
  base.token_timeout = Duration{2'000};
  build(3, 2, base);
  const Bytes old_tok = make_token(5, 9);  // ring {0,4}
  t0.inject(old_tok, 1);
  t1.inject(old_tok, 1);
  ASSERT_EQ(tokens_up.size(), 1u);

  // A membership change installs ring {0,8}; its first token restarts at
  // (rotation 0, seq 0). Waiting for K copies would stall the freshly
  // formed ring behind token_timeout — it must pass at once.
  const Bytes fresh = make_token(0, 0, RingId{0, 8});
  t2.inject(fresh, 1);
  EXPECT_EQ(tokens_up.size(), 2u)
      << "the first token of a freshly installed ring must not be absorbed";

  // A straggler resend of the dead ring's token must not reset the
  // collection, and further copies of the fresh token are duplicates.
  t0.inject(old_tok, 1);
  t1.inject(fresh, 1);
  EXPECT_EQ(tokens_up.size(), 2u);
  sim.run_for(Duration{10'000});
  EXPECT_EQ(tokens_up.size(), 2u);
  EXPECT_EQ(rep->stats().token_timer_expiries, 0u)
      << "the ring change must not leave a token timer pending";

  // Normal K-copy collection resumes for the new ring's next token.
  const Bytes next = make_token(0, 1, RingId{0, 8});
  t0.inject(next, 1);
  EXPECT_EQ(tokens_up.size(), 2u);
  t1.inject(next, 1);
  EXPECT_EQ(tokens_up.size(), 3u);
}

TEST_F(ApFixture, DuplicateTokenCopiesAbsorbed) {
  build(3, 2);
  const Bytes tok = make_token(1, 10);
  t0.inject(tok, 1);
  t0.inject(tok, 1);  // same network twice does not count as two copies
  EXPECT_TRUE(tokens_up.empty()) << "one network's duplicate must not satisfy K=2";
  t1.inject(tok, 1);
  EXPECT_EQ(tokens_up.size(), 1u);
}

}  // namespace
}  // namespace totem::rrp

// Fuzz-style robustness: the protocol stack must survive arbitrary bytes
// from the network — random garbage, truncations, bit-flips of valid
// packets, and type-confused headers — without crashing, and count them as
// malformed rather than acting on them. (Every parse is bounds-checked and
// CRC-verified; these tests hammer that property.)
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/simulator.h"
#include "srp/single_ring.h"
#include "testing/fake_replicator.h"
#include "testing/fake_transport.h"

#include "rrp/active_passive_replicator.h"
#include "rrp/active_replicator.h"
#include "rrp/passive_replicator.h"

namespace totem {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
  Bytes out(rng.next_below(max_len + 1));
  for (auto& b : out) b = std::byte(rng.next_u64() & 0xFF);
  return out;
}

/// A pool of valid packets to mutate.
std::vector<Bytes> valid_packets() {
  std::vector<Bytes> out;
  srp::wire::Token t;
  t.ring = RingId{1, 4};
  t.sender = 2;
  t.seq = 10;
  t.rtr = {5, 7};
  out.push_back(srp::wire::serialize_token(t));

  srp::wire::PacketHeader h{srp::wire::PacketType::kRegular, 2, RingId{1, 4}};
  std::vector<srp::wire::MessageEntry> entries(2);
  entries[0].seq = 1;
  entries[0].origin = 2;
  entries[0].payload = Bytes(40, std::byte{1});
  entries[1].seq = 2;
  entries[1].origin = 2;
  entries[1].payload = Bytes(80, std::byte{2});
  out.push_back(srp::wire::serialize_regular(h, entries));

  srp::wire::JoinMessage j;
  j.sender = 3;
  j.proc_set = {1, 2, 3};
  out.push_back(srp::wire::serialize_join(j));

  srp::wire::CommitToken c;
  c.new_ring = RingId{1, 8};
  c.members.resize(2);
  c.members[0].node = 1;
  c.members[1].node = 2;
  out.push_back(srp::wire::serialize_commit(c));
  return out;
}

Bytes mutate(Rng& rng, const Bytes& original) {
  Bytes out = original;
  switch (rng.next_below(3)) {
    case 0: {  // bit flip(s)
      const int flips = 1 + static_cast<int>(rng.next_below(4));
      for (int i = 0; i < flips && !out.empty(); ++i) {
        out[rng.next_below(out.size())] ^= std::byte(1u << rng.next_below(8));
      }
      break;
    }
    case 1:  // truncate (strictly shorter)
      out.resize(rng.next_below(out.size()));
      break;
    case 2: {  // splice: keep a prefix, append random bytes
      const std::size_t cut = rng.next_below(out.size());
      out.resize(cut);
      Bytes tail = random_bytes(rng, 64);
      out.insert(out.end(), tail.begin(), tail.end());
      break;
    }
  }
  if (out == original && !out.empty()) {
    out[0] ^= std::byte{0x01};  // a mutation must mutate
  }
  return out;
}

TEST(FuzzRobustness, WireParsersNeverCrashOnGarbage) {
  Rng rng(2002);
  for (int i = 0; i < 20'000; ++i) {
    const Bytes junk = random_bytes(rng, 2000);
    (void)srp::wire::peek(junk);
    (void)srp::wire::parse_token(junk);
    (void)srp::wire::parse_messages(junk);
    (void)srp::wire::parse_join(junk);
    (void)srp::wire::parse_commit(junk);
    (void)srp::wire::parse_recovered(junk);
  }
  SUCCEED();
}

TEST(FuzzRobustness, WireParsersRejectAllMutationsOfValidPackets) {
  Rng rng(2003);
  const auto pool = valid_packets();
  int accepted = 0;
  for (int i = 0; i < 20'000; ++i) {
    const Bytes mutated = mutate(rng, pool[rng.next_below(pool.size())]);
    auto info = srp::wire::peek(mutated);
    if (info.is_ok()) ++accepted;  // CRC collision: astronomically unlikely
  }
  EXPECT_EQ(accepted, 0) << "a mutated packet slipped past the checksum";
}

TEST(FuzzRobustness, SingleRingSurvivesHostileStream) {
  sim::Simulator sim;
  testing::FakeReplicator rep;
  srp::Config cfg;
  cfg.node_id = 1;
  cfg.initial_members = {1, 2, 3};
  cfg.token_loss_timeout = Duration{10'000'000};
  srp::SingleRing ring(sim, rep, cfg);
  int delivered = 0;
  ring.set_deliver_handler([&](const srp::DeliveredMessage&) { ++delivered; });
  ring.start();
  sim.run_for(Duration{1});

  Rng rng(2004);
  const auto pool = valid_packets();
  for (int i = 0; i < 10'000; ++i) {
    Bytes packet;
    if (rng.chance(0.5)) {
      packet = random_bytes(rng, 1600);
    } else {
      packet = mutate(rng, pool[rng.next_below(pool.size())]);
    }
    if (rng.chance(0.5)) {
      rep.inject_message(packet);
    } else {
      rep.inject_token(packet);
    }
  }
  // Nothing hostile was delivered or acted upon.
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ring.state(), srp::SingleRing::State::kOperational);
  EXPECT_GT(ring.stats().malformed_packets, 0u);
  // The ring still works afterwards.
  ASSERT_TRUE(ring.send(to_bytes("still alive")).is_ok());
  Bytes tok = rep.tokens.back().data;
  rep.inject_token(tok);
  EXPECT_EQ(delivered, 1);
}

TEST(FuzzRobustness, ReplicatorsSurviveHostileStream) {
  sim::Simulator sim;
  Rng rng(2005);
  const auto pool = valid_packets();

  testing::FakeTransport a0{0, 7}, a1{1, 7}, a2{2, 7};
  rrp::ActiveReplicator active(sim, {&a0, &a1});
  rrp::PassiveReplicator passive(sim, {&a0, &a1});  // rebinds rx handlers; fine
  rrp::ActivePassiveReplicator ap(sim, {&a0, &a1, &a2}, rrp::ActivePassiveConfig{});

  int up = 0;
  auto sink_msg = [&](BytesView, NetworkId) { ++up; };
  auto sink_tok = [&](BytesView, NetworkId) { ++up; };
  for (rrp::Replicator* r :
       std::initializer_list<rrp::Replicator*>{&active, &passive, &ap}) {
    r->set_message_handler(sink_msg);
    r->set_token_handler(sink_tok);
    for (int i = 0; i < 5'000; ++i) {
      Bytes packet = rng.chance(0.5) ? random_bytes(rng, 1600)
                                     : mutate(rng, pool[rng.next_below(pool.size())]);
      r->on_packet(net::ReceivedPacket{BufferPool::scratch().copy_of(packet),
                                       static_cast<NodeId>(rng.next_below(4)),
                                       static_cast<NetworkId>(rng.next_below(3))});
    }
    sim.run_for(Duration{50'000});
  }
  EXPECT_EQ(up, 0) << "mutated packets must never be delivered upward";
}

}  // namespace
}  // namespace totem

// Chaos soak: a randomized schedule of network failures, repairs, loss
// bursts, corruption, partitions, node crashes and rejoins — while traffic
// flows. The system may reconfigure as it sees fit; what must NEVER break:
//
//   C1 Pairwise order consistency — messages delivered by two nodes are
//      delivered in the same relative order (the heart of total order,
//      valid across membership changes).
//   C2 No duplicates at any node.
//   C3 Convergence — once everything heals and traffic resumes, all nodes
//      re-form one ring and deliver new traffic everywhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

struct ChaosParam {
  api::ReplicationStyle style;
  std::uint64_t seed;
};

class ChaosTest : public ::testing::TestWithParam<ChaosParam> {};

std::vector<std::string> payload_stream(const SimCluster& cluster, NodeId at) {
  std::vector<std::string> out;
  for (const auto& d : cluster.deliveries(at)) {
    out.push_back(totem::to_string(d.payload));
  }
  return out;
}

/// C1: the common elements of two streams appear in the same order.
void expect_order_consistent(const std::vector<std::string>& a,
                             const std::vector<std::string>& b, NodeId ia, NodeId ib) {
  const std::set<std::string> in_a(a.begin(), a.end());
  const std::set<std::string> in_b(b.begin(), b.end());
  std::vector<std::string> common_in_a, common_in_b;
  for (const auto& m : a) {
    if (in_b.count(m)) common_in_a.push_back(m);
  }
  for (const auto& m : b) {
    if (in_a.count(m)) common_in_b.push_back(m);
  }
  ASSERT_EQ(common_in_a.size(), common_in_b.size());
  for (std::size_t k = 0; k < common_in_a.size(); ++k) {
    ASSERT_EQ(common_in_a[k], common_in_b[k])
        << "C1 violated between nodes " << ia << " and " << ib << " at common pos " << k;
  }
}

TEST_P(ChaosTest, SafetySurvivesRandomizedFaultStorm) {
  const auto [style, seed] = GetParam();
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = style == api::ReplicationStyle::kActivePassive ? 3 : 2;
  cfg.style = style;
  cfg.seed = seed;
  cfg.srp.token_loss_timeout = Duration{100'000};
  cfg.srp.join_interval = Duration{10'000};
  cfg.srp.consensus_timeout = Duration{100'000};
  cfg.srp.commit_timeout = Duration{100'000};
  SimCluster cluster(cfg);
  cluster.start_all();

  // Steady trickle of uniquely-tagged messages from every node.
  Rng rng(seed * 31 + 5);
  int counter = 0;
  std::function<void(std::size_t)> trickle = [&](std::size_t n) {
    (void)cluster.node(n).send(
        to_bytes("s" + std::to_string(seed) + "-" + std::to_string(counter++)));
    cluster.simulator().schedule(Duration{3'000 + rng.next_below(4'000)},
                                 [&trickle, n] { trickle(n); });
  };
  for (std::size_t n = 0; n < cluster.node_count(); ++n) trickle(n);

  // The storm: eight random fault actions, 300 ms apart, each undone before
  // the next strikes somewhere else.
  std::optional<NodeId> crashed;
  for (int action = 0; action < 8; ++action) {
    cluster.run_for(Duration{150'000});
    const auto kind = rng.next_below(5);
    const auto net = static_cast<NetworkId>(rng.next_below(cluster.network_count()));
    switch (kind) {
      case 0:
        cluster.network(net).fail();
        cluster.run_for(Duration{300'000});
        cluster.network(net).recover();
        for (std::size_t i = 0; i < cluster.node_count(); ++i) {
          cluster.node(i).replicator().reset_network(net);
        }
        break;
      case 1:
        cluster.network(net).set_loss_rate(0.2);
        cluster.run_for(Duration{300'000});
        cluster.network(net).set_loss_rate(0.0);
        break;
      case 2:
        cluster.network(net).set_corruption_rate(0.1);
        cluster.run_for(Duration{300'000});
        cluster.network(net).set_corruption_rate(0.0);
        break;
      case 3:
        cluster.network(net).set_partition({{0, 1}, {2, 3}});
        cluster.run_for(Duration{300'000});
        cluster.network(net).clear_partition();
        break;
      case 4:
        if (!crashed) {
          const NodeId victim = static_cast<NodeId>(1 + rng.next_below(3));
          cluster.crash(victim);
          crashed = victim;
          cluster.run_for(Duration{400'000});
          cluster.reconnect(victim);
          crashed.reset();
        }
        break;
    }
    cluster.run_for(Duration{150'000});
  }

  // Heal completely and let the system converge.
  for (std::size_t n = 0; n < cluster.network_count(); ++n) {
    cluster.network(n).recover();
    cluster.network(n).clear_partition();
    cluster.network(n).set_loss_rate(0.0);
    cluster.network(n).set_corruption_rate(0.0);
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      cluster.node(i).replicator().reset_network(static_cast<NetworkId>(n));
      cluster.reconnect(static_cast<NodeId>(i));
    }
  }
  cluster.run_for(Duration{4'000'000});

  // C3: one ring of everyone, carrying fresh traffic everywhere.
  std::vector<NodeId> everyone;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    everyone.push_back(static_cast<NodeId>(i));
  }
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    ASSERT_EQ(cluster.node(i).ring().state(), srp::SingleRing::State::kOperational)
        << "node " << i;
    ASSERT_EQ(cluster.node(i).ring().members(), everyone) << "node " << i;
  }
  const std::string probe = "probe-" + std::to_string(seed);
  ASSERT_TRUE(cluster.node(0).send(to_bytes(probe)).is_ok());
  cluster.run_for(Duration{1'000'000});

  // C1 + C2 + probe delivery.
  std::vector<std::vector<std::string>> streams;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    streams.push_back(payload_stream(cluster, static_cast<NodeId>(i)));
    std::set<std::string> unique(streams.back().begin(), streams.back().end());
    EXPECT_EQ(unique.size(), streams.back().size()) << "C2: duplicates at node " << i;
    EXPECT_NE(std::find(streams.back().begin(), streams.back().end(), probe),
              streams.back().end())
        << "C3: probe missing at node " << i;
  }
  for (std::size_t a = 0; a < streams.size(); ++a) {
    for (std::size_t b = a + 1; b < streams.size(); ++b) {
      expect_order_consistent(streams[a], streams[b], static_cast<NodeId>(a),
                              static_cast<NodeId>(b));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Storms, ChaosTest,
    ::testing::Values(ChaosParam{api::ReplicationStyle::kActive, 1},
                      ChaosParam{api::ReplicationStyle::kActive, 2},
                      ChaosParam{api::ReplicationStyle::kActive, 3},
                      ChaosParam{api::ReplicationStyle::kPassive, 4},
                      ChaosParam{api::ReplicationStyle::kPassive, 5},
                      ChaosParam{api::ReplicationStyle::kActivePassive, 6}));

}  // namespace
}  // namespace totem::harness

// Property-based tests: the protocol's safety invariants under randomized
// workloads, loss patterns and replication styles. Each parameterization is
// a different deterministic universe (seeded simulator); the invariants must
// hold in all of them.
//
//   I1 Agreement   — every pair of nodes delivers identical streams.
//   I2 Validity    — every message sent by a ring member is delivered.
//   I3 Integrity   — no message is delivered twice at one node.
//   I4 Order       — delivered seqs are strictly increasing per ring.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

struct Universe {
  api::ReplicationStyle style;
  std::uint64_t seed;
  double loss;
  std::size_t nodes;
};

class InvariantTest : public ::testing::TestWithParam<Universe> {};

void check_agreement(const SimCluster& cluster, std::size_t node_count) {
  const auto& ref = cluster.deliveries(0);
  for (std::size_t i = 1; i < node_count; ++i) {
    const auto& d = cluster.deliveries(i);
    ASSERT_EQ(d.size(), ref.size()) << "I1: node " << i << " diverges in count";
    for (std::size_t k = 0; k < ref.size(); ++k) {
      ASSERT_EQ(d[k].payload, ref[k].payload) << "I1: node " << i << " pos " << k;
      ASSERT_EQ(d[k].origin, ref[k].origin) << "I1: node " << i << " pos " << k;
    }
  }
}

TEST_P(InvariantTest, SafetyInvariantsHoldUnderRandomLoss) {
  const Universe u = GetParam();
  ClusterConfig cfg;
  cfg.node_count = u.nodes;
  cfg.network_count = u.style == api::ReplicationStyle::kActivePassive ? 3 : 2;
  cfg.style = u.style;
  cfg.seed = u.seed;
  cfg.net_params.loss_rate = u.loss;
  SimCluster cluster(cfg);
  cluster.start_all();

  // Mixed workload: skewed senders, sizes spanning packing and
  // fragmentation regimes, bursts scheduled at random times.
  Rng rng(u.seed * 7919 + 13);
  std::multiset<std::string> offered;
  int counter = 0;
  for (int burst = 0; burst < 20; ++burst) {
    const auto at = Duration{static_cast<Duration::rep>(rng.next_below(400'000))};
    const std::size_t sender = rng.next_below(u.nodes);
    const int n = 1 + static_cast<int>(rng.next_below(8));
    std::vector<std::string> payloads;
    for (int k = 0; k < n; ++k) {
      const std::size_t size = 4 + rng.next_below(3000);
      std::string payload = "u" + std::to_string(u.seed) + "-" +
                            std::to_string(counter++) + "-";
      payload.resize(size, 'x');
      payloads.push_back(payload);
      offered.insert(payload);
    }
    cluster.simulator().schedule(at, [&cluster, sender, payloads] {
      for (const auto& p : payloads) {
        ASSERT_TRUE(cluster.node(sender).send(to_bytes(p)).is_ok());
      }
    });
  }
  cluster.run_for(Duration{6'000'000});

  // I2: everything offered was delivered (somewhere between 20 and 160
  // messages). I3: exactly once.
  const auto& ref = cluster.deliveries(0);
  std::multiset<std::string> delivered;
  for (const auto& d : ref) delivered.insert(totem::to_string(d.payload));
  EXPECT_EQ(delivered, offered) << "I2/I3 violated";

  check_agreement(cluster, u.nodes);

  // I4: strictly increasing seqs at every node.
  for (std::size_t i = 0; i < u.nodes; ++i) {
    const auto& d = cluster.deliveries(i);
    for (std::size_t k = 1; k < d.size(); ++k) {
      ASSERT_GT(d[k].seq, d[k - 1].seq) << "I4: node " << i << " pos " << k;
    }
  }

  // No reconfiguration and no false alarms in a loss-only universe.
  for (std::size_t i = 0; i < u.nodes; ++i) {
    EXPECT_EQ(cluster.views(i).size(), 1u) << "node " << i;
  }
  EXPECT_TRUE(cluster.faults().empty());
}

std::vector<Universe> universes() {
  std::vector<Universe> out;
  const api::ReplicationStyle styles[] = {
      api::ReplicationStyle::kNone, api::ReplicationStyle::kActive,
      api::ReplicationStyle::kPassive, api::ReplicationStyle::kActivePassive};
  std::uint64_t seed = 100;
  for (auto style : styles) {
    for (double loss : {0.0, 0.005, 0.02}) {
      out.push_back(Universe{style, seed++, loss, 4});
    }
  }
  // A couple of larger rings.
  out.push_back(Universe{api::ReplicationStyle::kActive, 900, 0.01, 6});
  out.push_back(Universe{api::ReplicationStyle::kPassive, 901, 0.01, 6});
  return out;
}

INSTANTIATE_TEST_SUITE_P(Universes, InvariantTest, ::testing::ValuesIn(universes()));

// ---------------------------------------------------------------------------
// Crash universes: agreement must hold among survivors, and the crashed
// node's pre-crash deliveries must be a prefix of the survivors' stream.

class CrashUniverseTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashUniverseTest, PrefixAgreementAcrossCrash) {
  const std::uint64_t seed = GetParam();
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.seed = seed;
  cfg.net_params.loss_rate = 0.01;
  cfg.srp.token_loss_timeout = Duration{100'000};
  cfg.srp.consensus_timeout = Duration{100'000};
  SimCluster cluster(cfg);
  cluster.start_all();

  Rng rng(seed);
  for (int k = 0; k < 60; ++k) {
    const std::size_t sender = rng.next_below(3);  // survivors only
    ASSERT_TRUE(
        cluster.node(sender).send(to_bytes("c" + std::to_string(k))).is_ok());
  }
  const auto crash_at = Duration{20'000 + rng.next_below(50'000)};
  cluster.run_for(crash_at);
  cluster.crash(3);
  const TimePoint crash_time = cluster.simulator().now();
  cluster.run_for(Duration{5'000'000});

  // Survivors agree exactly.
  const auto& ref = cluster.deliveries(0);
  ASSERT_EQ(ref.size(), 60u);
  for (NodeId i = 1; i < 3; ++i) {
    const auto& d = cluster.deliveries(i);
    ASSERT_EQ(d.size(), ref.size());
    for (std::size_t k = 0; k < ref.size(); ++k) {
      ASSERT_EQ(d[k].payload, ref[k].payload) << "survivor " << i << " pos " << k;
    }
  }
  // Crashed node: pre-crash deliveries are a prefix of the agreed stream.
  const auto& dead = cluster.deliveries(3);
  std::size_t pre = 0;
  for (const auto& m : dead) {
    if (m.when > crash_time) break;
    ++pre;
  }
  ASSERT_LE(pre, ref.size());
  for (std::size_t k = 0; k < pre; ++k) {
    ASSERT_EQ(dead[k].payload, ref[k].payload) << "crashed node prefix pos " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashUniverseTest,
                         ::testing::Values(11u, 23u, 37u, 59u, 71u));

// ---------------------------------------------------------------------------
// Rolling network failures with repair: at least one network healthy at all
// times => zero application-visible disruption, ever.

TEST(RollingFailures, AlternatingNetworkOutagesAreInvisible) {
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  SimCluster cluster(cfg);
  cluster.start_all();

  PeriodicDriver driver(cluster, {.message_size = 300, .rate_per_node = 500});
  driver.start();

  for (int round = 0; round < 3; ++round) {
    const NetworkId victim = static_cast<NetworkId>(round % 2);
    cluster.run_for(Duration{500'000});
    cluster.network(victim).fail();
    cluster.run_for(Duration{1'500'000});
    cluster.network(victim).recover();
    for (std::size_t i = 0; i < 4; ++i) {
      cluster.node(i).replicator().reset_network(victim);
    }
  }
  driver.stop();
  cluster.run_for(Duration{2'000'000});

  // Complete agreement, no membership change.
  const auto& ref = cluster.deliveries(0);
  EXPECT_EQ(ref.size(), driver.messages_offered());
  for (std::size_t i = 1; i < 4; ++i) {
    const auto& d = cluster.deliveries(i);
    ASSERT_EQ(d.size(), ref.size()) << "node " << i;
    for (std::size_t k = 0; k < ref.size(); ++k) {
      ASSERT_EQ(d[k].payload, ref[k].payload);
    }
    EXPECT_EQ(cluster.views(i).size(), 1u) << "node " << i;
  }
}

}  // namespace
}  // namespace totem::harness

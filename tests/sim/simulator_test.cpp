#include "sim/simulator.h"

#include <gtest/gtest.h>

namespace totem::sim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(Duration{30}, [&] { order.push_back(3); });
  sim.schedule(Duration{10}, [&] { order.push_back(1); });
  sim.schedule(Duration{20}, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, FifoAmongSameTimeEvents) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(Duration{5}, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ClockAdvancesToEventTime) {
  Simulator sim;
  TimePoint seen{};
  sim.schedule(Duration{123}, [&] { seen = sim.now(); });
  sim.run_all();
  EXPECT_EQ(seen.time_since_epoch().count(), 123);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(Duration{100}, [&] { ++fired; });
  sim.schedule(Duration{300}, [&] { ++fired; });
  sim.run_until(TimePoint{} + Duration{200});
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now().time_since_epoch().count(), 200);
  sim.run_for(Duration{200});
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, CancelledTimerDoesNotFire) {
  Simulator sim;
  bool fired = false;
  TimerHandle h = sim.schedule(Duration{10}, [&] { fired = true; });
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(Simulator, HandleInactiveAfterFiring) {
  Simulator sim;
  TimerHandle h = sim.schedule(Duration{10}, [] {});
  sim.run_all();
  EXPECT_FALSE(h.active());
  h.cancel();  // safe no-op after firing
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(Duration{1}, recurse);
  };
  sim.schedule(Duration{1}, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now().time_since_epoch().count(), 5);
}

TEST(Simulator, EventCountTracked) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule(Duration{i}, [] {});
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(CpuModel, SerializesWork) {
  CpuModel cpu;
  const TimePoint t0{};
  // Two 10us jobs arriving at the same instant complete back to back.
  EXPECT_EQ(cpu.acquire(t0, Duration{10}), t0 + Duration{10});
  EXPECT_EQ(cpu.acquire(t0, Duration{10}), t0 + Duration{20});
  EXPECT_EQ(cpu.total_busy(), Duration{20});
}

TEST(CpuModel, IdleGapsAreNotCharged) {
  CpuModel cpu;
  const TimePoint t0{};
  cpu.acquire(t0, Duration{5});
  // Work arriving after the CPU went idle starts immediately.
  EXPECT_EQ(cpu.acquire(t0 + Duration{100}, Duration{5}), t0 + Duration{105});
  EXPECT_EQ(cpu.total_busy(), Duration{10});
}

}  // namespace
}  // namespace totem::sim

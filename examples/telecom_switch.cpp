// telecom_switch: the paper's heavy-load motivating domain (§1: systems that
// "handle heavy message loads, such as telecommunication switches").
//
// Six call-processing nodes replicate call state through Totem RRP with
// ACTIVE replication (loss masked with zero retransmission delay — the
// right trade for call-setup latency). Each node owns a block of circuits;
// call setup and teardown events are broadcast; every node maintains the
// full circuit table. Active replication keeps worst-case event latency
// flat even with 2% packet loss on one network.
// Run: ./build/examples/telecom_switch
#include <cstdio>
#include <map>

#include "common/bytes.h"
#include "harness/sim_cluster.h"

using namespace totem;

namespace {

enum class CallEvent : std::uint8_t { kSetup = 1, kTeardown = 2 };

struct CallMsg {
  CallEvent event;
  std::uint32_t circuit;
  std::uint32_t subscriber;

  [[nodiscard]] Bytes encode() const {
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(event));
    w.u32(circuit);
    w.u32(subscriber);
    return std::move(w).take();
  }
  static CallMsg decode(BytesView b) {
    ByteReader r(b);
    CallMsg m{};
    m.event = static_cast<CallEvent>(r.u8().value());
    m.circuit = r.u32().value();
    m.subscriber = r.u32().value();
    return m;
  }
};

// The replicated circuit table every switch node maintains.
struct CircuitTable {
  std::map<std::uint32_t, std::uint32_t> active_calls;  // circuit -> subscriber
  std::uint64_t setups = 0;
  std::uint64_t teardowns = 0;
  std::uint64_t glare = 0;  // setup on busy circuit — resolved identically everywhere

  void apply(const CallMsg& m) {
    if (m.event == CallEvent::kSetup) {
      if (!active_calls.emplace(m.circuit, m.subscriber).second) {
        ++glare;  // deterministic: first setup in the total order wins
        return;
      }
      ++setups;
    } else {
      teardowns += active_calls.erase(m.circuit);
    }
  }

  [[nodiscard]] std::uint64_t fingerprint() const {
    std::uint64_t h = 14695981039346656037ull;
    for (const auto& [c, s] : active_calls) {
      h = (h ^ (static_cast<std::uint64_t>(c) << 32 | s)) * 1099511628211ull;
    }
    return h;
  }
};

}  // namespace

int main() {
  constexpr std::size_t kNodes = 6;
  constexpr std::uint32_t kCircuits = 4'000;

  harness::ClusterConfig cfg;
  cfg.node_count = kNodes;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.record_payloads = false;
  harness::SimCluster cluster(cfg);
  // Realistic pain: network 0 drops 2% of everything. Active replication
  // masks it — no retransmission delay on the call path.
  cluster.network(0).set_loss_rate(0.02);

  std::vector<CircuitTable> tables(kNodes);
  std::vector<Duration> worst_latency(kNodes, Duration{0});
  std::vector<std::map<SeqNum, TimePoint>> send_times(kNodes);

  for (std::size_t n = 0; n < kNodes; ++n) {
    cluster.set_app_deliver_handler(static_cast<NodeId>(n), [&, n](const srp::DeliveredMessage& m) {
      tables[n].apply(CallMsg::decode(m.payload));
    });
  }
  cluster.start_all();

  // Call generators: each node sets up and tears down calls on its circuit
  // block at an aggregate of ~30k events/sec.
  Rng rng(7);
  struct Generator {
    std::uint32_t next_circuit;
    std::uint32_t block_end;
  };
  std::vector<Generator> gens;
  for (std::size_t n = 0; n < kNodes; ++n) {
    const std::uint32_t block = kCircuits / kNodes;
    gens.push_back({static_cast<std::uint32_t>(n * block),
                    static_cast<std::uint32_t>((n + 1) * block)});
  }
  bool generating = true;
  std::function<void(std::size_t)> generate = [&](std::size_t n) {
    if (!generating) return;
    auto& g = gens[n];
    const std::uint32_t circuit = g.next_circuit;
    g.next_circuit = g.next_circuit + 1 == g.block_end
                         ? static_cast<std::uint32_t>(n * (kCircuits / kNodes))
                         : g.next_circuit + 1;
    const std::uint32_t sub = static_cast<std::uint32_t>(rng.next_below(1'000'000));
    (void)cluster.node(n).send(CallMsg{CallEvent::kSetup, circuit, sub}.encode());
    // Teardown after a short "call" (1-20 ms).
    const auto hold = Duration{1'000 + static_cast<Duration::rep>(rng.next_below(19'000))};
    cluster.simulator().schedule(hold, [&cluster, n, circuit] {
      (void)cluster.node(n).send(CallMsg{CallEvent::kTeardown, circuit, 0}.encode());
    });
    cluster.simulator().schedule(Duration{200}, [&generate, n] { generate(n); });
  };
  for (std::size_t n = 0; n < kNodes; ++n) generate(n);

  const Duration run{2'000'000};
  cluster.run_for(run);
  // Stop the call generators and drain in-flight traffic so every node has
  // applied the identical complete stream before comparing tables.
  generating = false;
  cluster.run_for(Duration{300'000});

  std::printf("telecom switch: %zu nodes, 2 networks (active replication), "
              "2%% loss on network 0\n\n",
              kNodes);
  bool consistent = true;
  for (std::size_t n = 0; n < kNodes; ++n) {
    std::printf("  node %zu: setups=%llu teardowns=%llu glare=%llu active=%zu "
                "table_fingerprint=%016llx\n",
                n, static_cast<unsigned long long>(tables[n].setups),
                static_cast<unsigned long long>(tables[n].teardowns),
                static_cast<unsigned long long>(tables[n].glare),
                tables[n].active_calls.size(),
                static_cast<unsigned long long>(tables[n].fingerprint()));
    consistent = consistent && tables[n].fingerprint() == tables[0].fingerprint();
  }
  const double rate = static_cast<double>(cluster.delivered_count(0)) /
                      std::chrono::duration<double>(run).count();
  std::uint64_t retrans = 0;
  for (std::size_t n = 0; n < kNodes; ++n) {
    retrans += cluster.node(n).ring().stats().retransmissions_sent;
  }
  std::printf("\n  event rate: %.0f events/sec at every node\n", rate);
  std::printf("  retransmissions: %llu (loss on network 0 masked by network 1)\n",
              static_cast<unsigned long long>(retrans));
  std::printf("  circuit tables consistent: %s\n", consistent ? "YES" : "NO");
  return consistent ? 0 : 1;
}

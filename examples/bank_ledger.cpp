// bank_ledger: state-machine replication on top of Totem RRP.
//
// The classic use of totally-ordered broadcast (paper §1: "back-end servers
// for financial applications"): every replica applies the same stream of
// transfers in the same order, so balances stay identical WITHOUT any
// locking or coordination beyond the group communication itself. Mid-run,
// one of the two networks is destroyed — the ledger replicas never notice,
// and an alarm is raised for the operator.
//
// Runs on the deterministic simulated substrate (4 bank replicas, 2
// networks, active replication). Run: ./build/examples/bank_ledger
#include <cstdio>
#include <map>
#include <string>

#include "common/bytes.h"
#include "harness/sim_cluster.h"

using namespace totem;

namespace {

// A transfer command serialized into a Totem message.
struct Transfer {
  std::uint32_t from;
  std::uint32_t to;
  std::int64_t amount;

  [[nodiscard]] Bytes encode() const {
    ByteWriter w;
    w.u32(from);
    w.u32(to);
    w.u64(static_cast<std::uint64_t>(amount));
    return std::move(w).take();
  }
  static Transfer decode(BytesView b) {
    ByteReader r(b);
    Transfer t{};
    t.from = r.u32().value();
    t.to = r.u32().value();
    t.amount = static_cast<std::int64_t>(r.u64().value());
    return t;
  }
};

// One bank replica: account balances driven purely by delivered transfers.
class Ledger {
 public:
  explicit Ledger(int accounts) {
    for (int a = 0; a < accounts; ++a) balances_[a] = 1'000;
  }

  void apply(const Transfer& t) {
    // Deterministic business rule: reject overdrafts. Because every replica
    // sees the same totally-ordered stream, every replica rejects the SAME
    // transfers — no cross-replica coordination needed.
    auto& from = balances_[t.from];
    if (from < t.amount) {
      ++rejected_;
      return;
    }
    from -= t.amount;
    balances_[t.to] += t.amount;
    ++applied_;
  }

  [[nodiscard]] std::int64_t total() const {
    std::int64_t sum = 0;
    for (const auto& [_, b] : balances_) sum += b;
    return sum;
  }
  [[nodiscard]] std::uint64_t fingerprint() const {
    std::uint64_t h = 1469598103934665603ull;
    for (const auto& [a, b] : balances_) {
      h = (h ^ static_cast<std::uint64_t>(a * 1000003 + b)) * 1099511628211ull;
    }
    return h;
  }
  [[nodiscard]] int applied() const { return applied_; }
  [[nodiscard]] int rejected() const { return rejected_; }

 private:
  std::map<std::uint32_t, std::int64_t> balances_;
  int applied_ = 0;
  int rejected_ = 0;
};

}  // namespace

int main() {
  constexpr int kReplicas = 4;
  constexpr int kAccounts = 8;
  constexpr int kTransfers = 2'000;

  harness::ClusterConfig cfg;
  cfg.node_count = kReplicas;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.record_payloads = false;
  harness::SimCluster cluster(cfg);

  std::vector<Ledger> ledgers(kReplicas, Ledger(kAccounts));
  for (int r = 0; r < kReplicas; ++r) {
    cluster.set_app_deliver_handler(static_cast<NodeId>(r), [&ledgers, r](const srp::DeliveredMessage& m) {
      ledgers[r].apply(Transfer::decode(m.payload));
    });
    cluster.node(r).set_fault_handler([r, &cluster](const rrp::NetworkFaultReport& f) {
      std::printf("[t=%8lldus] replica %d ALARM: network %d faulty (%s) — page the operator\n",
                  static_cast<long long>(cluster.simulator().now().time_since_epoch().count()),
                  r, static_cast<int>(f.network), to_string(f.reason));
    });
  }
  cluster.start_all();

  // Clients at each replica issue randomized transfers.
  Rng rng(2026);
  for (int i = 0; i < kTransfers; ++i) {
    Transfer t{static_cast<std::uint32_t>(rng.next_below(kAccounts)),
               static_cast<std::uint32_t>(rng.next_below(kAccounts)),
               static_cast<std::int64_t>(rng.next_below(500))};
    const auto replica = rng.next_below(kReplicas);
    const auto at = Duration{static_cast<Duration::rep>(rng.next_below(900'000))};
    cluster.simulator().schedule(at, [&cluster, replica, t] {
      (void)cluster.node(replica).send(t.encode());
    });
  }

  // Halfway through, a switch dies: total failure of network 0.
  cluster.simulator().schedule(Duration{450'000}, [&cluster] {
    std::printf("[t=  450000us] *** network 0 switch destroyed ***\n");
    cluster.network(0).fail();
  });

  cluster.run_for(Duration{3'000'000});

  std::printf("\nafter %d transfers across a mid-run network failure:\n", kTransfers);
  bool consistent = true;
  for (int r = 0; r < kReplicas; ++r) {
    std::printf("  replica %d: applied=%d rejected=%d total=%lld fingerprint=%016llx\n", r,
                ledgers[r].applied(), ledgers[r].rejected(),
                static_cast<long long>(ledgers[r].total()),
                static_cast<unsigned long long>(ledgers[r].fingerprint()));
    consistent = consistent && ledgers[r].fingerprint() == ledgers[0].fingerprint() &&
                 ledgers[r].total() == kAccounts * 1'000;
  }
  std::printf("replicas consistent: %s\n", consistent ? "YES" : "NO");
  std::printf("membership changes seen: %zu (network faults must not change membership)\n",
              cluster.views(0).size() - 1);
  return consistent ? 0 : 1;
}

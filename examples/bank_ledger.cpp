// bank_ledger: a replicated bank ledger on the SMR stack (DESIGN.md §13).
//
// The classic use of totally-ordered broadcast (paper §1: "back-end servers
// for financial applications"), now running on the full state-machine
// replication layer: every replica hosts a ReplicatedKv driven by a
// ReplicatedLog, accounts are versioned keys, and a transfer is a pair of
// compare-and-swap commands — the CAS version guard IS the overdraft check,
// because the balance a client computed from cannot have changed by the
// time its debit applies. No locks, no cross-replica coordination.
//
// Three things go wrong mid-run, on purpose:
//   t=1.0s  one of the two networks is destroyed — replication continues on
//           the survivor and an operator alarm fires (RRP transparency);
//   t=1.5s  a FOURTH replica joins cold, while transfers keep flowing — the
//           leader snapshots the ledger at an agreed point in the stream
//           and chunks it over; the joiner replays the live suffix and
//           converges to the byte-identical state (joiner state transfer);
//   always  clients race CAS commands at three replicas — contended debits
//           are refused deterministically, contended credits retry.
//
// Runs on the deterministic simulated substrate. Run: ./build/examples/bank_ledger
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/group_bus.h"
#include "common/bytes.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "harness/sim_cluster.h"
#include "smr/replicated_kv.h"
#include "smr/replicated_log.h"

using namespace totem;

namespace {

constexpr int kReplicas = 4;  // replicas 0..2 found the group; 3 joins late
constexpr int kAccounts = 8;
constexpr std::int64_t kOpeningBalance = 1'000;
constexpr Duration kClientStop{2'500'000};  // sim time when clients stop

std::string acct(std::uint32_t a) { return "acct:" + std::to_string(a); }

Bytes encode_balance(std::int64_t b) {
  ByteWriter w;
  w.u64(static_cast<std::uint64_t>(b));
  return std::move(w).take();
}

std::int64_t decode_balance(BytesView v) {
  ByteReader r(v);
  return static_cast<std::int64_t>(r.u64().value());
}

/// One replica's transfer client. A transfer debits `from` with a CAS
/// pinned to the version the client read — if any other transfer touched
/// the account first, the CAS refuses and the transfer is dropped (same
/// deterministic outcome at every replica). A successful debit owes one
/// credit, which retries CAS until it lands: money is conserved.
struct BankClient {
  smr::ReplicatedLog* log = nullptr;
  smr::ReplicatedKv* kv = nullptr;
  sim::Simulator* sim = nullptr;
  Rng rng{1};

  struct PendingTransfer {
    std::uint32_t to = 0;
    std::int64_t amount = 0;
    bool is_credit = false;
  };
  std::map<std::uint64_t, PendingTransfer> pending;  // request id -> op

  int transfers_done = 0;
  int overdrafts_refused = 0;
  int debits_contended = 0;
  int credit_retries = 0;

  void try_transfer() {
    if (!log->live()) return;
    const auto from = static_cast<std::uint32_t>(rng.next_below(kAccounts));
    const auto to = static_cast<std::uint32_t>(rng.next_below(kAccounts));
    const auto amount = static_cast<std::int64_t>(1 + rng.next_below(400));
    const smr::ReplicatedKv::Entry* e = kv->get(acct(from));
    if (e == nullptr) return;  // ledger not seeded yet
    const std::int64_t balance = decode_balance(e->value);
    if (balance < amount || from == to) {
      ++overdrafts_refused;
      return;
    }
    auto r = log->submit(smr::ReplicatedKv::encode_cas(
        acct(from), e->version, encode_balance(balance - amount)));
    if (r.is_ok()) pending[r.value()] = {to, amount, false};
  }

  void submit_credit(std::uint32_t to, std::int64_t amount) {
    const smr::ReplicatedKv::Entry* e = kv->get(acct(to));
    if (e == nullptr) return;  // cannot happen once seeded
    auto r = log->submit(smr::ReplicatedKv::encode_cas(
        acct(to), e->version, encode_balance(decode_balance(e->value) + amount)));
    if (r.is_ok()) {
      pending[r.value()] = {to, amount, true};
    } else {
      // Ring backpressure: the debt stands, try again shortly.
      sim->schedule(Duration{5'000}, [this, to, amount] { submit_credit(to, amount); });
    }
  }

  void on_complete(std::uint64_t req, BytesView result, bool applied_locally) {
    const auto it = pending.find(req);
    if (it == pending.end()) return;
    const PendingTransfer op = it->second;
    pending.erase(it);
    bool ok = false;
    if (applied_locally) {
      // (A command absorbed into a restored snapshot has no result bytes;
      // only the late joiner sees that, and it runs no client.)
      const auto res = smr::ReplicatedKv::decode_result(result);
      ok = res.is_ok() && res.value().ok;
    }
    if (!op.is_credit) {
      if (ok) {
        submit_credit(op.to, op.amount);  // debit landed: now owe the credit
      } else {
        ++debits_contended;  // version moved under us — transfer refused whole
      }
    } else if (ok) {
      ++transfers_done;
    } else {
      ++credit_retries;  // credit raced another write: re-read and retry
      submit_credit(op.to, op.amount);
    }
  }

  [[nodiscard]] bool idle() const { return pending.empty(); }
};

}  // namespace

int main() {
  harness::ClusterConfig cfg;
  cfg.node_count = kReplicas;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.record_payloads = false;
  harness::SimCluster cluster(cfg);
  auto& sim = cluster.simulator();

  std::vector<std::unique_ptr<api::GroupBus>> buses;
  std::vector<std::unique_ptr<smr::ReplicatedKv>> kvs;
  std::vector<std::unique_ptr<smr::ReplicatedLog>> logs;
  for (int r = 0; r < kReplicas; ++r) {
    buses.push_back(std::make_unique<api::GroupBus>(cluster.node(r)));
    kvs.push_back(std::make_unique<smr::ReplicatedKv>());
    logs.push_back(std::make_unique<smr::ReplicatedLog>(
        sim, *buses.back(), *kvs.back(), smr::ReplicatedLog::Config{}));
    cluster.node(r).set_fault_handler([r, &sim](const rrp::NetworkFaultReport& f) {
      std::printf("[t=%8lldus] replica %d ALARM: network %d faulty (%s) — page the operator\n",
                  static_cast<long long>(sim.now().time_since_epoch().count()), r,
                  static_cast<int>(f.network), to_string(f.reason));
    });
  }
  cluster.start_all();

  std::vector<BankClient> clients(kReplicas);
  for (int r = 0; r < kReplicas; ++r) {
    clients[r].log = logs[r].get();
    clients[r].kv = kvs[r].get();
    clients[r].sim = &sim;
    clients[r].rng = Rng(2026 + static_cast<std::uint64_t>(r));
    logs[r]->set_completion_handler(
        [&clients, r](std::uint64_t req, BytesView result, bool applied) {
          clients[r].on_complete(req, result, applied);
        });
  }

  // Replicas 0..2 found the ledger group; replica 3 stays offline for now.
  for (int r = 0; r < 3; ++r) (void)logs[r]->start();
  cluster.run_for(Duration{200'000});

  // Replica 0 seeds the accounts (plain puts — versioned keys from then on).
  for (int a = 0; a < kAccounts; ++a) {
    (void)logs[0]->submit(smr::ReplicatedKv::encode_put(
        acct(static_cast<std::uint32_t>(a)), encode_balance(kOpeningBalance)));
  }
  cluster.run_for(Duration{300'000});

  // Clients at the three founding replicas issue racing transfers until
  // t=2.5s. The self-rescheduling ticks live in this function-scope vector,
  // which outlives every simulator run below.
  std::vector<std::function<void()>> tickers(3);
  for (int r = 0; r < 3; ++r) {
    tickers[r] = [&clients, &sim, &tickers, r] {
      clients[r].try_transfer();
      if (sim.now().time_since_epoch() < kClientStop) {
        sim.schedule(Duration{3'000 + 500 * r}, tickers[r]);
      }
    };
    sim.schedule(Duration{1'000 + 300 * r}, tickers[r]);
  }

  // t=1.0s: a switch dies. Replication continues on the surviving network.
  sim.schedule(Duration{500'000}, [&cluster] {
    std::printf("[t= 1000000us] *** network 0 switch destroyed ***\n");
    cluster.network(0).fail();
  });

  // t=1.5s: a fourth replica joins COLD, mid-traffic, over the one surviving
  // network. It must converge to the exact ledger via snapshot + replay.
  sim.schedule(Duration{1'000'000}, [&logs] {
    std::printf("[t= 1500000us] *** replica 3 joins with empty state ***\n");
    (void)logs[3]->start();
  });
  cluster.run_for(Duration{3'000'000});

  // Drain: every owed credit must land and the joiner must be live.
  for (int spin = 0; spin < 50; ++spin) {
    const bool idle = clients[0].idle() && clients[1].idle() && clients[2].idle();
    if (idle && logs[3]->live()) break;
    cluster.run_for(Duration{200'000});
  }

  std::printf("\nledger after racing transfers, a dead network, and a late joiner:\n");
  bool consistent = true;
  for (int r = 0; r < kReplicas; ++r) {
    const Bytes snap = kvs[r]->snapshot();
    std::int64_t total = 0;
    for (int a = 0; a < kAccounts; ++a) {
      const auto* e = kvs[r]->get(acct(static_cast<std::uint32_t>(a)));
      total += e != nullptr ? decode_balance(e->value) : 0;
    }
    std::printf("  replica %d: applied=%llu keys=%zu total=%lld state-crc=%08x%s\n", r,
                static_cast<unsigned long long>(logs[r]->applied_seq()), kvs[r]->size(),
                static_cast<long long>(total), crc32(snap),
                r == 3 ? "  (joined late)" : "");
    consistent = consistent && snap == kvs[0]->snapshot() &&
                 total == kAccounts * kOpeningBalance && logs[r]->live();
  }
  int done = 0, refused = 0, contended = 0, retries = 0;
  for (const auto& c : clients) {
    done += c.transfers_done;
    refused += c.overdrafts_refused;
    contended += c.debits_contended;
    retries += c.credit_retries;
  }
  const auto& js = logs[3]->stats();
  std::printf("transfers: %d completed, %d refused (overdraft guard), %d lost CAS races, %d credit retries\n",
              done, refused, contended, retries);
  std::printf("joiner state transfer: %llu snapshot restored, %llu chunks, %llu buffered commands replayed\n",
              static_cast<unsigned long long>(js.snapshots_restored),
              static_cast<unsigned long long>(js.chunks_accepted),
              static_cast<unsigned long long>(js.commands_replayed));
  std::printf("replicas consistent and money conserved: %s\n", consistent ? "YES" : "NO");
  return consistent ? 0 : 1;
}

// Quickstart: three nodes, two redundant loopback "networks", REAL UDP
// sockets — the smallest complete Totem RRP deployment.
//
// Each node runs in its own thread with its own reactor and two UDP sockets
// (one per network). Node 0 sends ten messages; every node prints the
// totally-ordered delivery stream. Run:
//
//   ./build/examples/quickstart
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/node.h"
#include "net/reactor.h"
#include "net/udp_transport.h"

using namespace totem;

namespace {

constexpr std::uint32_t kNodes = 3;
constexpr std::uint32_t kNetworks = 2;
constexpr std::uint16_t kBasePort = 39100;  // network n uses ports base+100n

std::mutex print_mu;

void run_node(NodeId id, std::atomic<int>& delivered_total) {
  net::Reactor reactor;

  std::vector<std::unique_ptr<net::UdpTransport>> owned;
  std::vector<net::Transport*> transports;
  for (NetworkId n = 0; n < kNetworks; ++n) {
    net::UdpTransport::Config tc;
    tc.network = n;
    tc.local_node = id;
    tc.peers = net::loopback_peers(static_cast<std::uint16_t>(kBasePort + 100 * n), kNodes);
    auto t = net::UdpTransport::create(reactor, tc);
    if (!t.is_ok()) {
      std::fprintf(stderr, "node %u: %s\n", id, t.status().to_string().c_str());
      return;
    }
    owned.push_back(std::move(t).take());
    transports.push_back(owned.back().get());
  }

  api::NodeConfig cfg;
  cfg.srp.node_id = id;
  cfg.srp.initial_members = {0, 1, 2};
  cfg.style = api::ReplicationStyle::kActive;  // every packet on both networks

  api::Node node(reactor, transports, cfg);
  node.set_deliver_handler([&](const srp::DeliveredMessage& m) {
    std::scoped_lock lock(print_mu);
    std::printf("node %u delivered #%llu from %u: %s\n", id,
                static_cast<unsigned long long>(m.seq), m.origin,
                to_string(m.payload).c_str());
    ++delivered_total;
  });
  node.set_membership_handler([&](const srp::MembershipView& v) {
    std::scoped_lock lock(print_mu);
    std::printf("node %u sees ring %s with %zu members\n", id,
                to_string(v.ring).c_str(), v.members.size());
  });
  node.set_fault_handler([&](const rrp::NetworkFaultReport& r) {
    std::scoped_lock lock(print_mu);
    std::printf("node %u ALARM: network %d faulty (%s)\n", id,
                static_cast<int>(r.network), to_string(r.reason));
  });
  node.start();

  if (id == 0) {
    // Give the ring a moment to form, then publish.
    reactor.schedule(Duration{200'000}, [&node] {
      for (int i = 0; i < 10; ++i) {
        const std::string text = "hello-" + std::to_string(i);
        (void)node.send(to_bytes(text));
      }
    });
  }

  reactor.run_for(Duration{2'000'000});  // 2 seconds
}

}  // namespace

int main() {
  std::printf("totem-rrp quickstart: %u nodes, %u redundant networks (UDP loopback)\n",
              kNodes, kNetworks);
  std::atomic<int> delivered_total{0};
  std::vector<std::thread> threads;
  for (NodeId id = 0; id < kNodes; ++id) {
    threads.emplace_back(run_node, id, std::ref(delivered_total));
  }
  for (auto& t : threads) t.join();
  std::printf("total deliveries across nodes: %d (expected %u)\n", delivered_total.load(),
              10 * kNodes);
  return delivered_total.load() == static_cast<int>(10 * kNodes) ? 0 : 1;
}

// network_failover: the operator's view of a network fault.
//
// Walks through the full lifecycle the paper describes (§3): a healthy
// passively-replicated system -> a network fails -> throughput dips while
// lost messages are retransmitted -> the local monitors raise alarms ->
// the system keeps running on the surviving network -> the administrator
// repairs the network and resets the RRP -> traffic spreads across both
// networks again. Prints a per-100ms timeline of delivery rate and
// per-network packet counts. Run: ./build/examples/network_failover
#include <cstdio>

#include "harness/drivers.h"
#include "harness/sim_cluster.h"

using namespace totem;

int main() {
  harness::ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kPassive;
  cfg.record_payloads = false;
  harness::SimCluster cluster(cfg);

  for (std::size_t r = 0; r < cluster.node_count(); ++r) {
    cluster.node(r).set_fault_handler([r, &cluster](const rrp::NetworkFaultReport& f) {
      std::printf("%8lldus  node %zu ALARM network %d: %s (evidence=%u) — %s\n",
                  static_cast<long long>(cluster.simulator().now().time_since_epoch().count()),
                  r, static_cast<int>(f.network), to_string(f.reason), f.evidence_count,
                  f.detail.c_str());
    });
  }
  cluster.start_all();

  harness::PeriodicDriver driver(cluster, {.message_size = 512, .rate_per_node = 2'000});
  driver.start();

  std::uint64_t last_delivered = 0;
  std::uint64_t last_net_pkts[2] = {0, 0};
  auto report = [&](const char* phase) {
    const std::uint64_t delivered = cluster.delivered_count(0);
    const std::uint64_t n0 = cluster.network(0).stats().packets_sent;
    const std::uint64_t n1 = cluster.network(1).stats().packets_sent;
    std::printf("%8lldus  %-22s rate=%5llu msgs/100ms  net0=%5llu pkts  net1=%5llu pkts\n",
                static_cast<long long>(cluster.simulator().now().time_since_epoch().count()),
                phase, static_cast<unsigned long long>(delivered - last_delivered),
                static_cast<unsigned long long>(n0 - last_net_pkts[0]),
                static_cast<unsigned long long>(n1 - last_net_pkts[1]));
    last_delivered = delivered;
    last_net_pkts[0] = n0;
    last_net_pkts[1] = n1;
  };

  std::printf("phase 1: both networks healthy\n");
  for (int i = 0; i < 3; ++i) {
    cluster.run_for(Duration{100'000});
    report("healthy");
  }

  std::printf("phase 2: network 1 fails (switch power cut)\n");
  cluster.network(1).fail();
  for (int i = 0; i < 6; ++i) {
    cluster.run_for(Duration{100'000});
    report("degraded");
  }

  std::printf("phase 3: administrator repairs network 1 and resets the RRP\n");
  cluster.network(1).recover();
  for (std::size_t r = 0; r < cluster.node_count(); ++r) {
    cluster.node(r).replicator().reset_network(1);
  }
  for (int i = 0; i < 3; ++i) {
    cluster.run_for(Duration{100'000});
    report("repaired");
  }

  driver.stop();
  cluster.run_for(Duration{500'000});

  // Outcome summary.
  const std::uint64_t offered = driver.messages_offered();
  bool complete = true;
  for (std::size_t r = 0; r < cluster.node_count(); ++r) {
    complete = complete && cluster.delivered_count(r) == offered;
  }
  std::printf("\noffered=%llu delivered(everywhere)=%s membership_changes=%zu\n",
              static_cast<unsigned long long>(offered), complete ? "all" : "INCOMPLETE",
              cluster.views(0).size() - 1);
  std::printf("=> the failure cost latency, never messages, and never the membership\n");
  return complete ? 0 : 1;
}

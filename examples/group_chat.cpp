// group_chat: process groups (GroupBus) over the redundant ring — the
// Corosync-CPG-style programming model. Four services run on four nodes;
// each joins the groups it cares about; every group sees one consistent,
// totally-ordered stream of messages AND membership changes, across a
// network failure and a node crash.
// Run: ./build/examples/group_chat
#include <cstdio>

#include "api/group_bus.h"
#include "harness/sim_cluster.h"

using namespace totem;

namespace {

const char* node_name(NodeId n) {
  static const char* names[] = {"alpha", "bravo", "charlie", "delta"};
  return n < 4 ? names[n] : "?";
}

}  // namespace

int main() {
  harness::ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.srp.token_loss_timeout = Duration{100'000};
  cfg.srp.consensus_timeout = Duration{100'000};
  harness::SimCluster cluster(cfg);

  std::vector<std::unique_ptr<api::GroupBus>> buses;
  for (std::size_t i = 0; i < 4; ++i) {
    buses.push_back(std::make_unique<api::GroupBus>(cluster.node(i)));
  }

  auto join = [&](NodeId n, const std::string& group) {
    (void)buses[n]->join(
        group,
        [n, group, &cluster](const api::GroupMessage& m) {
          std::printf("[t=%7lldus] #%s @%s <- %s: %s\n",
                      static_cast<long long>(
                          cluster.simulator().now().time_since_epoch().count()),
                      group.c_str(), node_name(n), node_name(m.origin),
                      totem::to_string(m.payload).c_str());
        },
        [n, group, &cluster](const api::GroupView& v) {
          std::string members;
          for (NodeId m : v.members) {
            members += std::string(node_name(m)) + " ";
          }
          std::printf("[t=%7lldus] #%s @%s view: { %s}\n",
                      static_cast<long long>(
                          cluster.simulator().now().time_since_epoch().count()),
                      group.c_str(), node_name(n), members.c_str());
        });
  };

  // alpha+bravo+charlie run #control; charlie+delta run #metrics.
  join(0, "control");
  join(1, "control");
  join(2, "control");
  join(2, "metrics");
  join(3, "metrics");
  cluster.start_all();
  cluster.run_for(Duration{200'000});

  (void)buses[0]->send("control", to_bytes("failover drill at 12:00"));
  (void)buses[3]->send("metrics", to_bytes("cpu=42%"));
  cluster.run_for(Duration{200'000});

  std::printf("--- network 0 dies; nobody above this layer should notice ---\n");
  cluster.network(0).fail();
  (void)buses[1]->send("control", to_bytes("ack, drill confirmed"));
  (void)buses[2]->send("metrics", to_bytes("cpu=43%"));
  cluster.run_for(Duration{500'000});

  std::printf("--- charlie crashes; both groups see one ordered view change ---\n");
  cluster.crash(2);
  cluster.run_for(Duration{2'000'000});
  (void)buses[0]->send("control", to_bytes("who is still here?"));
  (void)buses[3]->send("metrics", to_bytes("cpu=44% (charlie gone)"));
  cluster.run_for(Duration{500'000});

  std::printf("--- final group views ---\n");
  for (NodeId n = 0; n < 4; ++n) {
    if (n == 2) continue;
    for (const std::string group : {"control", "metrics"}) {
      if (!buses[n]->locally_joined(group)) continue;
      std::string members;
      for (NodeId m : buses[n]->group_members(group)) {
        members += std::string(node_name(m)) + " ";
      }
      std::printf("  @%s sees #%s = { %s}\n", node_name(n), group.c_str(),
                  members.c_str());
    }
  }
  return 0;
}

// ring_inspector: the observability story — flight recorder + stats.
//
// Runs a short scenario (healthy traffic, a network failure, a node crash
// and reconfiguration) with the TraceRing flight recorder attached to one
// node, then prints (a) that node's protocol event history around each
// incident and (b) a full stats snapshot per node — what you would pull off
// a wedged production system to diagnose it after the fact.
// Run: ./build/examples/ring_inspector
#include <cstdio>

#include "api/stats.h"
#include "common/trace.h"
#include "harness/drivers.h"
#include "harness/sim_cluster.h"

using namespace totem;

int main() {
  harness::ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = api::ReplicationStyle::kActive;
  cfg.srp.token_loss_timeout = Duration{100'000};
  cfg.srp.consensus_timeout = Duration{100'000};
  cfg.record_payloads = false;

  // Attach the flight recorder to node 1's SRP and RRP before the cluster
  // builds its nodes: the harness copies cfg per node, so we wire it into
  // the one node we care about afterwards via the config template instead —
  // simplest here: record node-agnostic events by giving EVERY node the
  // same ring (events interleave, which is itself informative).
  TraceRing blackbox(65536);
  cfg.srp.trace = &blackbox;
  cfg.active.trace = &blackbox;

  harness::SimCluster cluster(cfg);
  cluster.start_all();

  harness::PeriodicDriver driver(cluster, {.message_size = 256, .rate_per_node = 500});
  driver.start();
  cluster.run_for(Duration{300'000});

  std::printf("=== incident 1: network 0 switch dies at t=300ms ===\n");
  blackbox.clear();
  cluster.network(0).fail();
  cluster.run_for(Duration{400'000});
  int shown = 0;
  int timer_expiries = 0;
  for (const auto& r : blackbox.snapshot()) {
    switch (r.kind) {
      case TraceKind::kTokenTimerExpired:
        ++timer_expiries;
        if (timer_expiries <= 3) {
          std::printf("  %s\n", to_string(r).c_str());
          ++shown;
        }
        break;
      case TraceKind::kNetworkFault:
      case TraceKind::kRetransmitRequested:
      case TraceKind::kRetransmissionSent:
      case TraceKind::kTokenRetained:
      case TraceKind::kTokenLoss:
        std::printf("  %s\n", to_string(r).c_str());
        ++shown;
        break;
      default:
        break;
    }
    if (shown > 24) break;
  }
  std::printf("  (%d RRP token-timer expiries in total while copies were missing)\n",
              timer_expiries);

  std::printf("\n=== incident 2: node 3 crashes at t=700ms ===\n");
  cluster.network(0).recover();
  for (std::size_t i = 0; i < 4; ++i) cluster.node(i).replicator().reset_network(0);
  blackbox.clear();
  cluster.crash(3);
  cluster.run_for(Duration{1'000'000});
  shown = 0;
  for (const auto& r : blackbox.snapshot()) {
    switch (r.kind) {
      case TraceKind::kTokenLoss:
      case TraceKind::kStateChange:
      case TraceKind::kMembershipInstalled:
      case TraceKind::kNetworkFault:
        std::printf("  %s\n", to_string(r).c_str());
        ++shown;
        break;
      default:
        break;
    }
    if (shown > 24) break;
  }

  driver.stop();
  cluster.run_for(Duration{500'000});

  std::printf("\n=== post-mortem stats snapshots ===\n");
  for (std::size_t i = 0; i < 4; ++i) {
    std::printf("%s", api::to_string(api::snapshot(cluster.node(i), {})).c_str());
  }
  std::printf("\nblackbox: %zu events captured, %zu overwritten (capacity %zu)\n",
              blackbox.total_emitted() - blackbox.dropped(), blackbox.dropped(),
              blackbox.capacity());
  return 0;
}

#!/usr/bin/env python3
"""Tier-1 documentation checker (ctest entry: docs_check).

Three guarantees, so the docs cannot silently rot:

1. Every intra-repo markdown link in every tracked .md file resolves to a
   file or directory that actually exists (external http(s)/mailto links
   and pure #anchors are skipped; a trailing #fragment is stripped before
   the existence check).
2. Every module directory directly under src/ is mentioned (as "src/<name>/")
   in docs/ARCHITECTURE.md, so the architecture tour can never omit a
   subsystem that exists in the tree.
3. Every backticked inline source-path reference in the prose docs
   (README.md, DESIGN.md, EXPERIMENTS.md, docs/*.md) resolves to a real
   file, from the repo root or from src/ — so "see `srp/single_ring.h`"
   can never survive a rename. A span counts as a path reference when it
   is '/'-separated path characters ending in a source extension; brace
   groups expand (`metrics.{h,cpp}` checks both), and anything with
   spaces, wildcards, '::' or template brackets is prose, not a path.
   ROADMAP.md is exempt: it records history, including deleted files.

Usage: check_docs.py <repo_root>
Exits non-zero with one line per problem.
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {"build", ".git", "third_party"}

FENCE_RE = re.compile(r"^```.*?^```", re.M | re.S)
BACKTICK_RE = re.compile(r"`([^`]+)`")
PATH_CHARS_RE = re.compile(r"^[A-Za-z0-9_.{},/-]+$")
PATH_EXTENSIONS = (".h", ".hpp", ".c", ".cc", ".cpp", ".py", ".md")
BRACE_RE = re.compile(r"\{([^{}]*)\}")


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        rel = path.relative_to(root)
        if not any(part in SKIP_DIRS or part.startswith("build") for part in rel.parts):
            yield path


def check_links(root: Path):
    problems = []
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(SKIP_PREFIXES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (root / path_part) if path_part.startswith("/") else (md.parent / path_part)
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(root)}: broken link '{target}' "
                    f"(resolved to {resolved})"
                )
    return problems


def check_architecture_coverage(root: Path):
    arch = root / "docs" / "ARCHITECTURE.md"
    if not arch.exists():
        return ["docs/ARCHITECTURE.md is missing"]
    text = arch.read_text(encoding="utf-8")
    problems = []
    for module in sorted(p.name for p in (root / "src").iterdir() if p.is_dir()):
        if f"src/{module}/" not in text:
            problems.append(
                f"docs/ARCHITECTURE.md: module directory src/{module}/ is never mentioned"
            )
    return problems


def expand_braces(span: str):
    """`a.{h,cpp}` -> ['a.h', 'a.cpp']; at most one group per span."""
    m = BRACE_RE.search(span)
    if not m:
        return [span]
    return [span[: m.start()] + alt + span[m.end():] for alt in m.group(1).split(",")]


def path_candidates(text: str):
    """Backticked spans that read as source-file paths (see docstring #3).

    Fenced code blocks are stripped first: their ``` markers would otherwise
    desynchronize the inline-backtick pairing for the rest of the document
    (and shell snippets reference build outputs, not sources).
    """
    for span in BACKTICK_RE.findall(FENCE_RE.sub("", text)):
        if "/" not in span or not PATH_CHARS_RE.match(span):
            continue
        for path in expand_braces(span):
            if path.endswith(PATH_EXTENSIONS):
                yield span, path


def check_inline_paths(root: Path):
    prose = [root / "README.md", root / "DESIGN.md", root / "EXPERIMENTS.md"]
    prose += sorted((root / "docs").glob("*.md")) if (root / "docs").is_dir() else []
    problems = []
    for md in prose:
        if not md.exists():
            continue
        for span, path in path_candidates(md.read_text(encoding="utf-8")):
            if not ((root / path).exists() or (root / "src" / path).exists()):
                problems.append(
                    f"{md.relative_to(root)}: inline path reference `{span}` "
                    f"does not resolve ({path} not found at repo root or src/)"
                )
    return problems


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <repo_root>", file=sys.stderr)
        return 2
    root = Path(sys.argv[1]).resolve()
    problems = (
        check_links(root)
        + check_architecture_coverage(root)
        + check_inline_paths(root)
    )
    for p in problems:
        print(f"FAIL: {p}")
    if problems:
        print(f"docs_check: {len(problems)} problem(s)")
        return 1
    md_count = sum(1 for _ in markdown_files(root))
    print(f"docs_check OK: {md_count} markdown files, all links resolve, "
          f"ARCHITECTURE.md covers every src/ module, "
          f"inline source-path references all exist")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Tier-1 documentation checker (ctest entry: docs_check).

Two guarantees, so the docs cannot silently rot:

1. Every intra-repo markdown link in every tracked .md file resolves to a
   file or directory that actually exists (external http(s)/mailto links
   and pure #anchors are skipped; a trailing #fragment is stripped before
   the existence check).
2. Every module directory directly under src/ is mentioned (as "src/<name>/")
   in docs/ARCHITECTURE.md, so the architecture tour can never omit a
   subsystem that exists in the tree.

Usage: check_docs.py <repo_root>
Exits non-zero with one line per problem.
"""
import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {"build", ".git", "third_party"}


def markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        rel = path.relative_to(root)
        if not any(part in SKIP_DIRS or part.startswith("build") for part in rel.parts):
            yield path


def check_links(root: Path):
    problems = []
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(SKIP_PREFIXES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (root / path_part) if path_part.startswith("/") else (md.parent / path_part)
            if not resolved.exists():
                problems.append(
                    f"{md.relative_to(root)}: broken link '{target}' "
                    f"(resolved to {resolved})"
                )
    return problems


def check_architecture_coverage(root: Path):
    arch = root / "docs" / "ARCHITECTURE.md"
    if not arch.exists():
        return ["docs/ARCHITECTURE.md is missing"]
    text = arch.read_text(encoding="utf-8")
    problems = []
    for module in sorted(p.name for p in (root / "src").iterdir() if p.is_dir()):
        if f"src/{module}/" not in text:
            problems.append(
                f"docs/ARCHITECTURE.md: module directory src/{module}/ is never mentioned"
            )
    return problems


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <repo_root>", file=sys.stderr)
        return 2
    root = Path(sys.argv[1]).resolve()
    problems = check_links(root) + check_architecture_coverage(root)
    for p in problems:
        print(f"FAIL: {p}")
    if problems:
        print(f"docs_check: {len(problems)} problem(s)")
        return 1
    md_count = sum(1 for _ in markdown_files(root))
    print(f"docs_check OK: {md_count} markdown files, all links resolve, "
          f"ARCHITECTURE.md covers every src/ module")
    return 0


if __name__ == "__main__":
    sys.exit(main())

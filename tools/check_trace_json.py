#!/usr/bin/env python3
"""Validate a merged Chrome trace-event JSON timeline (tools/totem_tracemerge
output), optionally producing it first from a fixed-seed chaos run.

Validate an existing file:

    check_trace_json.py merged.json

End-to-end (the tier-1 ctest mode): run a deterministic 4-node chaos
campaign with --trace-dump, merge the per-node dumps, then validate:

    check_trace_json.py --chaos <totem_chaos> --merge <totem_tracemerge> \
        [--seed N] [--workdir DIR]

Schema checks: the document is {"traceEvents": [...]} with a non-empty list;
every event carries ph/pid (+ name/ts/tid for non-metadata events); "X"
duration spans carry a non-negative integer dur. Semantic checks: every node
named by process_name metadata has at least one token-rotation span, and at
least one end-to-end send->deliver span crosses nodes (args.origin != pid).
Exits nonzero with a message on the first failure so ctest localizes it.
"""
import argparse
import json
import os
import subprocess
import sys
import tempfile


def fail(msg: str) -> None:
    print(f"check_trace_json: {msg}", file=sys.stderr)
    sys.exit(1)


def validate(path: str) -> None:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty list")

    node_pids = set()
    rotation_pids = set()
    cross_deliver = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            fail(f"{path}: traceEvents[{i}] has unexpected ph {ph!r}")
        if "pid" not in ev:
            fail(f"{path}: traceEvents[{i}] missing pid")
        if ph == "M":
            if ev.get("name") not in ("process_name", "thread_name"):
                fail(f"{path}: traceEvents[{i}] metadata name {ev.get('name')!r}")
            if "name" not in ev.get("args", {}):
                fail(f"{path}: traceEvents[{i}] metadata missing args.name")
            label = ev["args"]["name"]
            if ev["name"] == "process_name" and label.startswith("node "):
                node_pids.add(ev["pid"])
            continue
        for key in ("name", "ts", "tid"):
            if key not in ev:
                fail(f"{path}: traceEvents[{i}] missing {key}")
        if not isinstance(ev["ts"], int):
            fail(f"{path}: traceEvents[{i}] ts must be an integer")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                fail(f"{path}: traceEvents[{i}] X span needs integer dur >= 0")
            if ev["name"] == "token-rotation":
                rotation_pids.add(ev["pid"])
            if (ev["name"] == "deliver"
                    and ev.get("args", {}).get("origin") != ev["pid"]):
                cross_deliver += 1

    if not node_pids:
        fail(f"{path}: no node process_name metadata found")
    missing = node_pids - rotation_pids
    if missing:
        fail(f"{path}: node pid(s) {sorted(missing)} have no token-rotation span")
    if cross_deliver == 0:
        fail(f"{path}: no cross-node send->deliver span (deliver with "
             "args.origin != pid)")
    print(f"check_trace_json: OK ({len(events)} events, {len(node_pids)} nodes, "
          f"{cross_deliver} cross-node deliver spans)")


def run_end_to_end(chaos: str, merge: str, seed: int, workdir: str) -> str:
    dump_dir = os.path.join(workdir, "trace")
    os.makedirs(dump_dir, exist_ok=True)
    cmd = [chaos, f"--seed={seed}", f"--trace-dump={dump_dir}"]
    proc = subprocess.run(cmd, timeout=600)
    if proc.returncode != 0:
        fail(f"{' '.join(cmd)} exited {proc.returncode}")
    dumps = sorted(
        os.path.join(dump_dir, f) for f in os.listdir(dump_dir)
        if f.endswith(".jsonl"))
    if len(dumps) < 2:
        fail(f"expected per-node dumps in {dump_dir}, found {dumps}")
    merged = os.path.join(workdir, "merged.json")
    proc = subprocess.run([merge, "-o", merged] + dumps, timeout=120)
    if proc.returncode != 0:
        fail(f"{merge} exited {proc.returncode}")
    return merged


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("merged", nargs="?", help="merged trace JSON to validate")
    parser.add_argument("--chaos", help="totem_chaos binary (end-to-end mode)")
    parser.add_argument("--merge", help="totem_tracemerge binary")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--workdir", help="scratch dir (default: a tempdir)")
    args = parser.parse_args()

    if args.chaos:
        if not args.merge:
            fail("--chaos requires --merge")
        if args.workdir:
            os.makedirs(args.workdir, exist_ok=True)
            validate(run_end_to_end(args.chaos, args.merge, args.seed, args.workdir))
        else:
            with tempfile.TemporaryDirectory() as tmp:
                validate(run_end_to_end(args.chaos, args.merge, args.seed, tmp))
    elif args.merged:
        validate(args.merged)
    else:
        fail("pass a merged.json or --chaos/--merge binaries")


if __name__ == "__main__":
    main()

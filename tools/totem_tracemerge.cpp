// totem_tracemerge: merge per-node TraceRing JSONL dumps into one Chrome
// trace-event JSON file loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
//   totem_tracemerge [-o merged.json] node0.jsonl node1.jsonl ...
//
// Each input is one node's TraceRing::to_jsonl() dump (e.g. written by
// `totem_chaos --trace-dump=DIR` or scraped from a live node's /trace
// telemetry endpoint). With no -o the document goes to stdout. Unparseable
// lines are skipped with a note on stderr; an input that yields nothing at
// all is an error (a typo'd path should not silently produce an empty
// timeline).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/trace_merge.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [-o merged.json] node0.jsonl [node1.jsonl ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) return usage(argv[0]);
      out_path = argv[++i];
    } else if (std::strncmp(argv[i], "--output=", 9) == 0) {
      out_path = argv[i] + 9;
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      usage(argv[0]);
      return 0;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else {
      inputs.emplace_back(argv[i]);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  std::vector<totem::TraceRecord> all;
  for (const std::string& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "totem_tracemerge: cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    std::size_t skipped = 0;
    auto records = totem::parse_trace_jsonl(text, &skipped);
    if (skipped > 0) {
      std::fprintf(stderr, "totem_tracemerge: %s: skipped %zu unparseable line(s)\n",
                   path.c_str(), skipped);
    }
    if (records.empty() && !text.empty()) {
      std::fprintf(stderr, "totem_tracemerge: %s: no parseable trace records\n",
                   path.c_str());
      return 1;
    }
    all.insert(all.end(), records.begin(), records.end());
  }

  const std::string merged = totem::merge_to_chrome_trace(std::move(all));
  if (out_path.empty()) {
    std::fwrite(merged.data(), 1, merged.size(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "totem_tracemerge: cannot write %s\n", out_path.c_str());
      return 1;
    }
    out << merged << '\n';
  }
  return 0;
}

// Figure 9: Utilized bandwidth of the Totem RRP in Kbytes/sec for SIX nodes.
#include "figure_common.h"

namespace totem::harness {
namespace {

void BM_Fig9_Bandwidth_6Nodes(benchmark::State& state) { figure_bench(state, 6); }
BENCHMARK(BM_Fig9_Bandwidth_6Nodes)->Apply(register_figure_args);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("fig9_bandwidth_6nodes")

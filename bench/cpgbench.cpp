// cpgbench — multi-process closed-process-group load harness (the corosync
// cpgbench shape): spawn one real totemd per node on a 4-node UDP loopback
// ring, fork N client processes per node, have every client join one group
// and hammer it, then verify that EVERY client observed the IDENTICAL total
// order (FNV-1a hash over the delivery stream, compared across processes)
// and report ops/s plus p50/p99 client-send→client-deliver latency.
//
// Two rounds:
//   baseline — clients only;
//   wedged   — one extra client joins and never reads. The harness checks
//              that the wedge is evicted by egress backpressure and that
//              the other clients' throughput stays within --wedge-ratio
//              (default 0.9) of baseline. A wedged reader must cost its
//              peers nothing.
//
// Emits the shared bench JSON schema (bench_report.h) by hand — this is an
// orchestrator, not a Google-Benchmark binary — honoring --json=PATH, so
// check_bench_json.py gates it in tier-1.
//
//   cpgbench [--totemd=PATH] [--nodes=4] [--clients-per-node=16]
//            [--msgs=25] [--payload=4096] [--base-port=47300]
//            [--wedge-ratio=0.9] [--json=PATH]
//
// Ports 47300+ (ring) — keep clear of the test suites (41xxx-46xxx).
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "ipc/client.h"

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

namespace {

struct Options {
  std::string totemd;
  std::uint32_t nodes = 4;
  std::uint32_t clients_per_node = 16;
  std::uint32_t msgs = 100;    ///< per client
  std::uint32_t window = 8;    ///< self-clocked in-flight sends per client
  std::uint32_t attempts = 3;  ///< wedge-gate retries (burst noise)
  std::uint32_t payload = 4096;
  std::uint16_t base_port = 47300;
  double wedge_ratio = 0.9;
  std::string json_path = "BENCH_cpgbench.json";
};

[[noreturn]] void die(const std::string& why) {
  std::fprintf(stderr, "cpgbench: FAIL: %s\n", why.c_str());
  std::exit(1);
}

std::string self_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return ".";
  buf[n] = '\0';
  std::string p(buf);
  const auto slash = p.rfind('/');
  return slash == std::string::npos ? "." : p.substr(0, slash);
}

bool flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

// Fixed in main() before any fork — forked workers must agree on the paths.
std::string g_sock_prefix;

std::string socket_path(totem::NodeId node) {
  return g_sock_prefix + std::to_string(node) + ".sock";
}

std::unique_ptr<totem::ipc::Client> connect_retry(const std::string& path) {
  for (int i = 0; i < 500; ++i) {
    totem::ipc::Client::Options o;
    o.socket_path = path;
    auto c = totem::ipc::Client::connect(std::move(o));
    if (c.is_ok()) return std::move(c).take();
    std::this_thread::sleep_for(20ms);
  }
  return nullptr;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

/// What one worker reports back up its pipe.
struct WorkerResult {
  std::uint64_t order_hash = 0;
  std::uint64_t received = 0;
  std::uint64_t elapsed_ns = 0;
  std::vector<std::uint64_t> latencies_us;  ///< own send→deliver samples
};

/// Client worker process body: join, barrier on the full view, send
/// `opt.msgs` while draining, then drain until every message in the round
/// has been delivered. Writes one result line to `result_fd` and _exits.
[[noreturn]] void run_worker(const Options& opt, totem::NodeId node,
                             std::uint32_t expected_members,
                             std::uint64_t expected_msgs, int result_fd) {
  auto client = connect_retry(socket_path(node));
  if (!client) _exit(10);
  if (!client->join("bench").is_ok()) _exit(11);

  WorkerResult r;
  std::uint64_t own_delivered = 0;
  std::uint64_t h = kFnvOffset;

  auto on_event = [&](const totem::ipc::Client::Event& ev) {
    if (ev.type == totem::ipc::Client::Event::Type::kDeliver) {
      fnv_mix(h, ev.deliver.origin.node);
      fnv_mix(h, ev.deliver.origin.client);
      fnv_mix(h, ev.deliver.seq);
      ++r.received;
      if (ev.deliver.origin == client->self() &&
          ev.deliver.payload.size() >= 8) {
        ++own_delivered;
        std::uint64_t ts = 0;
        std::memcpy(&ts, ev.deliver.payload.data(), 8);
        const auto now = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now().time_since_epoch())
                .count());
        r.latencies_us.push_back(now > ts ? (now - ts) / 1000 : 0);
      }
    } else if (ev.type == totem::ipc::Client::Event::Type::kGoodbye ||
               ev.type == totem::ipc::Client::Event::Type::kDisconnected) {
      _exit(15);
    }
  };

  // Start barrier: wait until the view holds every client of this round —
  // exactly. Leaves from a previous round's members can interleave with our
  // joins, so a peer may pass its barrier (and start sending) a view or two
  // before we pass ours; any data that early bird delivers to us meanwhile
  // is part of the round and is hashed, not treated as a protocol error.
  const auto barrier_deadline = Clock::now() + 120s;
  std::size_t members = 1;
  while (members != expected_members) {
    if (Clock::now() > barrier_deadline) _exit(12);
    auto ev = client->poll(50ms);
    if (!ev) continue;
    if (ev->type == totem::ipc::Client::Event::Type::kView) {
      members = ev->view.members.size();
    } else {
      on_event(*ev);
    }
  }

  // Round clock starts once the view is complete; barrier wait (previous
  // round's leave churn) is setup, not throughput.
  const auto started = Clock::now();
  const auto deadline = started + 120s;

  totem::Bytes payload(std::max<std::uint32_t>(opt.payload, 16), std::byte{0x42});
  std::uint32_t sent = 0;
  while (sent < opt.msgs) {
    if (Clock::now() > deadline) _exit(16);
    // Self-clocked window: never run more than `window` sends ahead of our
    // own delivered stream. An open loop would park megabytes in every
    // daemon and turn the bench into a queue-depth meter — and a client
    // lagging the aggregate stream by the egress cap reads as a wedge.
    // Block until something arrives — poll() returns on the first event, and
    // a short timeout here would have 64 window-full processes spinning the
    // scheduler while the daemons try to turn the token.
    if (sent - own_delivered >= opt.window) {
      while (auto ev = client->poll(50ms)) {
        on_event(*ev);
        if (sent - own_delivered < opt.window) break;
      }
      continue;
    }
    const auto ts = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
    std::memcpy(payload.data(), &ts, 8);
    const totem::Status s = client->send("bench", payload);
    if (s.is_ok()) {
      ++sent;
    } else if (s.code() != totem::StatusCode::kResourceExhausted) {
      _exit(17);
    }
    // Drain (and, when out of credits, wait for CREDIT) as we go.
    while (auto ev = client->poll(s.is_ok() ? 0ms : 10ms)) on_event(*ev);
  }
  while (r.received < expected_msgs) {
    if (Clock::now() > deadline) _exit(18);
    auto ev = client->poll(50ms);
    if (ev) on_event(*ev);
  }
  r.elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           started)
          .count());
  r.order_hash = h;

  std::string line = "R " + std::to_string(r.order_hash) + " " +
                     std::to_string(r.received) + " " +
                     std::to_string(r.elapsed_ns);
  for (const auto us : r.latencies_us) line += " " + std::to_string(us);
  line += "\n";
  if (::write(result_fd, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    _exit(19);
  }
  _exit(0);
}

/// Wedge process body: join, report "J", then hold the socket open WITHOUT
/// reading until the orchestrator pokes the control pipe; then poll once to
/// learn our fate and report "E <evicted>".
[[noreturn]] void run_wedge(totem::NodeId node, int control_fd, int result_fd) {
  auto client = connect_retry(socket_path(node));
  if (!client) _exit(20);
  if (!client->join("bench").is_ok()) _exit(21);
  if (::write(result_fd, "J\n", 2) != 2) _exit(22);

  char b;  // block here, never touching the daemon socket
  (void)::read(control_fd, &b, 1);

  bool evicted = false;
  const auto deadline = Clock::now() + 30s;
  while (!evicted && Clock::now() < deadline) {
    auto ev = client->poll(50ms);
    if (!ev) continue;
    if (ev->type == totem::ipc::Client::Event::Type::kGoodbye ||
        ev->type == totem::ipc::Client::Event::Type::kDisconnected) {
      evicted = true;
    }
  }
  const std::string line = std::string("E ") + (evicted ? "1" : "0") + "\n";
  (void)::write(result_fd, line.data(), line.size());
  _exit(0);
}

struct RoundStats {
  double ops_per_sec = 0;
  double delivers_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  double elapsed_ms = 0;
  bool wedge_evicted = false;
};

std::string read_line(int fd, std::chrono::seconds budget) {
  std::string line;
  const auto deadline = Clock::now() + budget;
  char c;
  while (Clock::now() < deadline) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n == 1) {
      if (c == '\n') return line;
      line += c;
    } else if (n == 0) {
      return line;  // EOF
    } else {
      return "";
    }
  }
  return "";
}

/// One measured round. `wedge` adds the never-reading client.
RoundStats run_round(const Options& opt, bool wedge) {
  const std::uint32_t workers = opt.nodes * opt.clients_per_node;
  const std::uint32_t expected_members = workers + (wedge ? 1 : 0);
  const std::uint64_t expected_msgs =
      static_cast<std::uint64_t>(workers) * opt.msgs;

  int wedge_result[2] = {-1, -1}, wedge_control[2] = {-1, -1};
  pid_t wedge_pid = -1;
  if (wedge) {
    if (::pipe(wedge_result) != 0 || ::pipe(wedge_control) != 0)
      die("pipe failed");
    wedge_pid = ::fork();
    if (wedge_pid < 0) die("fork failed");
    if (wedge_pid == 0) {
      ::close(wedge_result[0]);
      ::close(wedge_control[1]);
      run_wedge(0, wedge_control[0], wedge_result[1]);
    }
    ::close(wedge_result[1]);
    ::close(wedge_control[0]);
    // The wedge must be in the view before the workers' start barrier.
    if (read_line(wedge_result[0], 60s) != "J") die("wedge never joined");
  }

  std::vector<pid_t> pids;
  std::vector<int> result_fds;
  for (std::uint32_t w = 0; w < workers; ++w) {
    int fds[2];
    if (::pipe(fds) != 0) die("pipe failed");
    const pid_t pid = ::fork();
    if (pid < 0) die("fork failed");
    if (pid == 0) {
      ::close(fds[0]);
      run_worker(opt, static_cast<totem::NodeId>(w % opt.nodes),
                 expected_members, expected_msgs, fds[1]);
    }
    ::close(fds[1]);
    pids.push_back(pid);
    result_fds.push_back(fds[0]);
  }

  std::vector<WorkerResult> results;
  for (std::uint32_t w = 0; w < workers; ++w) {
    const std::string line = read_line(result_fds[w], 180s);
    int status = 0;
    if (::waitpid(pids[w], &status, 0) != pids[w] || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      die("worker " + std::to_string(w) + " failed (exit " +
          std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1) + ")");
    }
    ::close(result_fds[w]);
    WorkerResult r;
    char tag;
    std::size_t pos = 0;
    if (line.empty() || line[0] != 'R') die("bad worker report: " + line);
    tag = line[0];
    (void)tag;
    const char* p = line.c_str() + 1;
    char* end = nullptr;
    r.order_hash = std::strtoull(p, &end, 10);
    r.received = std::strtoull(end, &end, 10);
    r.elapsed_ns = std::strtoull(end, &end, 10);
    while (*end != '\0') {
      const std::uint64_t v = std::strtoull(end, &end, 10);
      r.latencies_us.push_back(v);
      (void)pos;
    }
    results.push_back(std::move(r));
  }

  RoundStats st;
  std::uint64_t max_elapsed = 0;
  std::vector<std::uint64_t> all_lat;
  for (std::uint32_t w = 0; w < workers; ++w) {
    const WorkerResult& r = results[w];
    if (r.order_hash != results[0].order_hash) {
      die("total-order violation: worker " + std::to_string(w) +
          " observed a different delivery order");
    }
    if (r.received != expected_msgs) {
      die("worker " + std::to_string(w) + " received " +
          std::to_string(r.received) + "/" + std::to_string(expected_msgs));
    }
    max_elapsed = std::max(max_elapsed, r.elapsed_ns);
    all_lat.insert(all_lat.end(), r.latencies_us.begin(),
                   r.latencies_us.end());
  }
  const double secs = static_cast<double>(max_elapsed) / 1e9;
  st.elapsed_ms = static_cast<double>(max_elapsed) / 1e6;
  st.ops_per_sec = secs > 0 ? static_cast<double>(expected_msgs) / secs : 0;
  st.delivers_per_sec =
      secs > 0 ? static_cast<double>(expected_msgs) * workers / secs : 0;
  std::sort(all_lat.begin(), all_lat.end());
  if (!all_lat.empty()) {
    st.p50_us = static_cast<double>(all_lat[all_lat.size() / 2]);
    st.p99_us = static_cast<double>(all_lat[all_lat.size() * 99 / 100]);
  }

  if (wedge) {
    // Workers are done; now ask the wedge what happened to it.
    if (::write(wedge_control[1], "x", 1) != 1) die("wedge poke failed");
    const std::string line = read_line(wedge_result[0], 60s);
    int status = 0;
    (void)::waitpid(wedge_pid, &status, 0);
    st.wedge_evicted = line == "E 1";
    ::close(wedge_result[0]);
    ::close(wedge_control[1]);
  }
  return st;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  opt.totemd = self_dir() + "/../src/daemon/totemd";
  std::string command;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) command += ' ';
    command += argv[i];
  }
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (flag(argv[i], "--totemd", &v)) opt.totemd = v;
    else if (flag(argv[i], "--nodes", &v)) opt.nodes = std::stoul(v);
    else if (flag(argv[i], "--clients-per-node", &v)) opt.clients_per_node = std::stoul(v);
    else if (flag(argv[i], "--msgs", &v)) opt.msgs = std::stoul(v);
    else if (flag(argv[i], "--window", &v)) opt.window = std::stoul(v);
    else if (flag(argv[i], "--payload", &v)) opt.payload = std::stoul(v);
    else if (flag(argv[i], "--base-port", &v)) opt.base_port = static_cast<std::uint16_t>(std::stoul(v));
    else if (flag(argv[i], "--wedge-ratio", &v)) opt.wedge_ratio = std::stod(v);
    else if (flag(argv[i], "--json", &v)) opt.json_path = v;
    else die(std::string("unknown flag: ") + argv[i]);
  }
  ::signal(SIGPIPE, SIG_IGN);
  g_sock_prefix = "/tmp/cpgbench-" + std::to_string(::getpid()) + "-";

  // Spawn one totemd per node.
  std::vector<pid_t> daemons;
  for (totem::NodeId n = 0; n < opt.nodes; ++n) {
    const pid_t pid = ::fork();
    if (pid < 0) die("fork failed");
    if (pid == 0) {
      const std::string sock = "--socket=" + socket_path(n);
      const std::string node = "--node=" + std::to_string(n);
      const std::string nodes = "--nodes=" + std::to_string(opt.nodes);
      const std::string port = "--base-port=" + std::to_string(opt.base_port);
      ::execl(opt.totemd.c_str(), opt.totemd.c_str(), sock.c_str(),
              node.c_str(), nodes.c_str(), port.c_str(),
              "--run-for-ms=600000", static_cast<char*>(nullptr));
      std::perror("execl totemd");
      std::_Exit(127);
    }
    daemons.push_back(pid);
  }

  const std::uint32_t workers = opt.nodes * opt.clients_per_node;
  std::printf("cpgbench: %u clients x %u msgs x %u B on a %u-node ring\n",
              workers, opt.msgs, opt.payload, opt.nodes);

  // Correctness violations (order mismatch, lost deliveries) die() inside
  // run_round on the first attempt. The throughput-ratio gate, by contrast,
  // compares two short bursts and carries run-to-run noise, so a missed
  // gate re-measures the PAIR rather than failing tier-1 on jitter.
  RoundStats base, wedged;
  double ratio = 0;
  for (std::uint32_t attempt = 1; attempt <= opt.attempts; ++attempt) {
    base = run_round(opt, /*wedge=*/false);
    std::printf("cpgbench: baseline %.0f ops/s  p50 %.0f us  p99 %.0f us\n",
                base.ops_per_sec, base.p50_us, base.p99_us);
    wedged = run_round(opt, /*wedge=*/true);
    ratio = base.ops_per_sec > 0 ? wedged.ops_per_sec / base.ops_per_sec : 0;
    std::printf(
        "cpgbench: wedged   %.0f ops/s  p50 %.0f us  p99 %.0f us  "
        "ratio %.2f  evicted=%d\n",
        wedged.ops_per_sec, wedged.p50_us, wedged.p99_us, ratio,
        wedged.wedge_evicted ? 1 : 0);
    if (wedged.wedge_evicted && ratio >= opt.wedge_ratio) break;
    if (attempt < opt.attempts)
      std::printf("cpgbench: wedge gate missed, re-measuring\n");
  }

  for (const pid_t pid : daemons) ::kill(pid, SIGTERM);
  for (const pid_t pid : daemons) {
    int status = 0;
    (void)::waitpid(pid, &status, 0);
  }
  for (totem::NodeId n = 0; n < opt.nodes; ++n)
    ::unlink(socket_path(n).c_str());

  // Report before gating, so a failed gate still leaves the evidence.
  totem::JsonWriter w;
  w.begin_object();
  w.kv("bench", "cpgbench");
  w.key("config");
  w.begin_object();
  w.kv("command", command);
  w.kv("output", opt.json_path);
  w.end_object();
  w.key("results");
  w.begin_array();
  const auto row = [&](const char* name, const RoundStats& st) {
    w.begin_object();
    w.kv("name", name);
    w.kv("iterations", std::int64_t{1});
    w.kv("real_time_ms", st.elapsed_ms);
    w.kv("cpu_time_ms", st.elapsed_ms);
    w.key("counters");
    w.begin_object();
    w.kv("ops_per_sec", st.ops_per_sec);
    w.kv("delivers_per_sec", st.delivers_per_sec);
    w.kv("p50_client_us", st.p50_us);
    w.kv("p99_client_us", st.p99_us);
    w.kv("clients", double(workers));
    w.kv("nodes", double(opt.nodes));
    w.kv("msgs_per_client", double(opt.msgs));
    w.kv("payload_bytes", double(opt.payload));
    w.kv("order_hash_match", 1.0);  // die()d above otherwise
    w.kv("wedged_evicted", st.wedge_evicted ? 1.0 : 0.0);
    w.kv("throughput_ratio",
         &st == &wedged ? ratio : 1.0);
    w.end_object();
    w.end_object();
  };
  row("cpgbench/baseline", base);
  row("cpgbench/wedged", wedged);
  w.end_array();
  w.end_object();
  std::ofstream out(opt.json_path, std::ios::trunc);
  if (!out) die("cannot write " + opt.json_path);
  out << w.take() << "\n";
  std::printf("wrote %s\n", opt.json_path.c_str());

  if (!wedged.wedge_evicted)
    die("wedged client was not evicted by backpressure");
  if (ratio < opt.wedge_ratio)
    die("throughput with a wedged client dropped to " + std::to_string(ratio) +
        "x of baseline (floor " + std::to_string(opt.wedge_ratio) + "x)");
  std::printf("cpgbench: PASS\n");
  return 0;
}

// Closed-loop replicated-KV workload (DESIGN.md §13, EXPERIMENTS.md §11):
// N clients each keep exactly one command outstanding against a 3-replica
// ReplicatedKv group — submit, wait for the replicated apply to complete
// locally, submit the next. Reported per run:
//
//   ops_per_sec    — completed replicated operations per second
//   p50_apply_us   — submit -> completion latency percentiles; under Totem
//   p99_apply_us     this is dominated by token rotations (a command is
//                    applied when its own broadcast is delivered back)
//
// Two transports, same protocol stack and workload:
//   BM_KvClosedLoopSim — SimCluster (virtual time; deterministic, measures
//                        protocol cost in token rounds, not host speed)
//   BM_KvClosedLoopUdp — real UDP sockets on loopback (wall-clock)
//
// The client count is the benchmark argument: 1 client measures the bare
// round-trip; more clients amortize rotations (many commands ride one
// token visit), so ops/s rises until the ring's per-rotation send budget
// saturates. Results land in BENCH_kv_closed_loop.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.h"
#include "harness/sim_cluster.h"
#include "net/reactor.h"
#include "net/udp_transport.h"
#include "smr/replicated_kv.h"
#include "smr/replicated_log.h"

namespace totem::smr {
namespace {

constexpr std::size_t kNodes = 3;
constexpr std::size_t kNetworks = 2;
constexpr std::size_t kKeys = 64;
constexpr std::uint16_t kUdpPortBase = 45300;  // 45000s: bench-only ports

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  const std::size_t idx = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
  return v[idx];
}

/// Shared closed-loop driver: clients are spread round-robin over the
/// replicas; each submits its next command from inside its completion.
/// `now_us` abstracts the clock (sim time vs steady_clock) and `pump` runs
/// the transport until progress is possible again.
struct ClosedLoop {
  std::vector<ReplicatedLog*> logs;
  std::size_t clients = 1;
  std::uint64_t target_ops = 1000;

  std::uint64_t completed = 0;
  std::uint64_t op_counter = 0;
  std::vector<double> latencies_us;
  // request id -> (client, submit time) per replica.
  std::vector<std::map<std::uint64_t, std::pair<std::size_t, double>>> pending;

  std::function<double()> now_us;

  void start() {
    pending.assign(logs.size(), {});
    latencies_us.reserve(target_ops);
    for (std::size_t n = 0; n < logs.size(); ++n) {
      logs[n]->set_completion_handler(
          [this, n](std::uint64_t req, BytesView, bool) {
            auto it = pending[n].find(req);
            if (it == pending[n].end()) return;
            const auto [client, submitted] = it->second;
            pending[n].erase(it);
            latencies_us.push_back(now_us() - submitted);
            ++completed;
            if (op_counter < target_ops) submit(client);
          });
    }
    for (std::size_t c = 0; c < clients; ++c) submit(c);
  }

  void submit(std::size_t client) {
    const std::size_t n = client % logs.size();
    const std::uint64_t op = op_counter++;
    const Bytes cmd = ReplicatedKv::encode_put(
        "key" + std::to_string(op % kKeys), to_bytes("v" + std::to_string(op)));
    auto r = logs[n]->submit(cmd);
    if (r.is_ok()) {
      pending[n].emplace(r.value(), std::pair{client, now_us()});
    } else {
      --op_counter;  // backpressure: the next completion retries the client
    }
  }
};

void report(benchmark::State& state, ClosedLoop& loop, double elapsed_s) {
  state.counters["ops_per_sec"] =
      elapsed_s > 0 ? static_cast<double>(loop.completed) / elapsed_s : 0;
  state.counters["ops_completed"] = static_cast<double>(loop.completed);
  state.counters["clients"] = static_cast<double>(loop.clients);
  state.counters["p50_apply_us"] = percentile(loop.latencies_us, 0.50);
  state.counters["p99_apply_us"] = percentile(loop.latencies_us, 0.99);
}

void BM_KvClosedLoopSim(benchmark::State& state) {
  for (auto _ : state) {
    harness::ClusterConfig cfg;
    cfg.node_count = kNodes;
    cfg.network_count = kNetworks;
    harness::SimCluster cluster(cfg);
    auto& sim = cluster.simulator();

    std::vector<std::unique_ptr<api::GroupBus>> buses;
    std::vector<std::unique_ptr<ReplicatedKv>> kvs;
    std::vector<std::unique_ptr<ReplicatedLog>> logs;
    for (std::size_t i = 0; i < kNodes; ++i) {
      buses.push_back(std::make_unique<api::GroupBus>(cluster.node(i)));
      kvs.push_back(std::make_unique<ReplicatedKv>());
      logs.push_back(std::make_unique<ReplicatedLog>(
          sim, *buses.back(), *kvs.back(), ReplicatedLog::Config{}));
    }
    cluster.start_all();
    for (auto& log : logs) (void)log->start();
    sim.run_for(Duration{1'000'000});  // everyone live

    ClosedLoop loop;
    for (auto& log : logs) loop.logs.push_back(log.get());
    loop.clients = static_cast<std::size_t>(state.range(0));
    loop.target_ops = 2000;
    loop.now_us = [&sim] {
      return static_cast<double>(sim.now().time_since_epoch().count());
    };

    const double start_us = loop.now_us();
    loop.start();
    while (loop.completed < loop.target_ops) sim.run_for(Duration{100'000});
    const double elapsed_s = (loop.now_us() - start_us) / 1e6;
    report(state, loop, elapsed_s);
    state.SetLabel("sim");
  }
}

void BM_KvClosedLoopUdp(benchmark::State& state) {
  for (auto _ : state) {
    net::Reactor reactor;
    std::vector<std::unique_ptr<net::UdpTransport>> transports;
    std::vector<std::unique_ptr<api::Node>> nodes;
    std::vector<std::unique_ptr<api::GroupBus>> buses;
    std::vector<std::unique_ptr<ReplicatedKv>> kvs;
    std::vector<std::unique_ptr<ReplicatedLog>> logs;
    for (NodeId id = 0; id < kNodes; ++id) {
      std::vector<net::Transport*> node_transports;
      for (NetworkId n = 0; n < kNetworks; ++n) {
        net::UdpTransport::Config tc;
        tc.network = n;
        tc.local_node = id;
        tc.peers = net::loopback_peers(
            static_cast<std::uint16_t>(kUdpPortBase + 100 * n), kNodes);
        auto t = net::UdpTransport::create(reactor, tc);
        if (!t.is_ok()) {
          state.SkipWithError("UDP socket setup failed");
          return;
        }
        transports.push_back(std::move(t).take());
        node_transports.push_back(transports.back().get());
      }
      api::NodeConfig cfg;
      cfg.srp.node_id = id;
      cfg.srp.initial_members = {0, 1, 2};
      cfg.style = api::ReplicationStyle::kActive;
      nodes.push_back(std::make_unique<api::Node>(reactor, node_transports, cfg));
      buses.push_back(std::make_unique<api::GroupBus>(*nodes.back()));
      kvs.push_back(std::make_unique<ReplicatedKv>());
      logs.push_back(std::make_unique<ReplicatedLog>(
          reactor, *buses.back(), *kvs.back(), ReplicatedLog::Config{}));
    }
    for (auto& n : nodes) n->start();
    for (auto& log : logs) (void)log->start();
    const auto live_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < live_deadline &&
           !std::all_of(logs.begin(), logs.end(),
                        [](const auto& l) { return l->live(); })) {
      reactor.poll_once(Duration{5'000});
    }
    if (!std::all_of(logs.begin(), logs.end(),
                     [](const auto& l) { return l->live(); })) {
      state.SkipWithError("replicas never went live");
      return;
    }

    ClosedLoop loop;
    for (auto& log : logs) loop.logs.push_back(log.get());
    loop.clients = static_cast<std::size_t>(state.range(0));
    loop.target_ops = 1500;
    loop.now_us = [] {
      return static_cast<double>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count()) /
             1e3;
    };

    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::seconds(30);
    loop.start();
    while (loop.completed < loop.target_ops &&
           std::chrono::steady_clock::now() < deadline) {
      reactor.poll_once(Duration{5'000});
    }
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    report(state, loop, elapsed_s);
    state.SetLabel("udp");
  }
}

BENCHMARK(BM_KvClosedLoopSim)->Arg(1)->Arg(8)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KvClosedLoopUdp)->Arg(1)->Arg(8)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace totem::smr

TOTEM_BENCH_MAIN("kv_closed_loop")

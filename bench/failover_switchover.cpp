// Measured failover under degraded networks (DESIGN.md §14, paper §3).
//
// failover_transparency.cpp kills a network on an otherwise CLEAN fabric.
// This bench asks the harder operational question: the surviving networks
// are themselves degraded — WAN-grade latency, gray failure, asymmetric
// loss, flapping — and one network still dies mid-traffic. For every
// replication style x named link profile it reports, JSON-checked in tier-1:
//
//   * detection_ms   — fault injection -> first administrator alarm
//   * reinstate_ms   — administrator repair -> every node receiving on the
//                      repaired network again (time-to-reinstate)
//   * msgs_delayed   — deliveries during the fault window whose latency
//                      exceeded the pre-fault p99 (histogram-delta count,
//                      aggregated across nodes)
//   * pps_before / pps_during / pps_after — node-0 delivery rate through
//                      the switch
//   * p99_before_us / p50_during_us / p99_during_us — delivery latency
//                      through the switch
//
// Adaptive token-timeout tuning (rrp::TimeoutAdvisor) is ON: with the
// paper's fixed 2 ms token timeout a WAN-profiled ring (rotation ~100 ms)
// would do nothing but fire timers and declare healthy networks faulty.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_report.h"

#include "harness/calibration.h"
#include "harness/drivers.h"
#include "harness/sim_cluster.h"
#include "net/link_profile.h"

namespace totem::harness {
namespace {

struct ProfileRow {
  const char* name;
  net::LinkProfile profile;
  /// Apply the profile per-direction (low node id -> high node id only)
  /// instead of network-wide, so the reverse path stays clean.
  bool asymmetric;
};

const ProfileRow kProfiles[] = {
    {"wan", net::LinkProfile::wan(), false},
    {"gray_failure", net::LinkProfile::gray_failure(), false},
    {"asymmetric_loss", net::LinkProfile::asymmetric_loss(), true},
    {"flapping", net::LinkProfile::flapping(), false},
};

/// Node's srp.delivery_latency_us snapshot (empty if never recorded).
HistogramSnapshot delivery_hist(const api::Node& node) {
  const auto snap = node.metrics().snapshot();
  const HistogramSnapshot* h = snap.find_histogram("srp.delivery_latency_us");
  return h ? *h : HistogramSnapshot{};
}

/// after - before, as a snapshot percentile() can digest. min is pinned to 0
/// and max to after.max, so the clamp only bites at the extremes.
HistogramSnapshot hist_delta(const HistogramSnapshot& before,
                             const HistogramSnapshot& after) {
  HistogramSnapshot d;
  d.count = after.count - before.count;
  d.sum = after.sum - before.sum;
  d.min = 0;
  d.max = after.max;
  for (std::size_t i = 0; i < d.buckets.size(); ++i) {
    d.buckets[i] = after.buckets[i] - before.buckets[i];
  }
  return d;
}

/// Delta samples whose bucket lower bound exceeds `threshold_us` — i.e.
/// deliveries slower than the pre-fault p99.
std::uint64_t count_above(const HistogramSnapshot& delta, double threshold_us) {
  std::uint64_t n = 0;
  for (std::size_t i = 1; i < delta.buckets.size(); ++i) {
    const double lower = static_cast<double>(1uLL << (i - 1));
    if (lower > threshold_us) n += delta.buckets[i];
  }
  return n;
}

void BM_FailoverSwitchover(benchmark::State& state) {
  const auto style = static_cast<api::ReplicationStyle>(state.range(0));
  const ProfileRow& row = kProfiles[state.range(1)];

  double pps_before = 0, pps_during = 0, pps_after = 0;
  double detection = -1, reinstate = -1;
  double msgs_delayed = 0;
  double p99_before = 0, p50_during = 0, p99_during = 0;

  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.node_count = 4;
    cfg.network_count = style == api::ReplicationStyle::kActivePassive ? 3 : 2;
    cfg.style = style;
    cfg.net_params = paper_net_params();
    cfg.host_costs = paper_host_costs();
    apply_paper_srp_costs(cfg.srp);
    // Degraded fabrics stretch a rotation to ~100 ms; the clean-LAN loss
    // timeouts would tear the ring down instead of riding it out.
    cfg.srp.token_loss_timeout = Duration{500'000};
    cfg.srp.consensus_timeout = Duration{500'000};
    cfg.srp.commit_timeout = Duration{500'000};
    cfg.adaptive_timeout.enabled = true;
    cfg.adaptive_timeout.update_interval = Duration{100'000};
    cfg.adaptive_timeout.advisor.min_samples = 8;
    cfg.record_payloads = false;
    SimCluster cluster(cfg);

    // The degraded profile covers EVERY network from the start — the fault
    // happens on a fabric that is already operating degraded.
    for (std::size_t n = 0; n < cluster.network_count(); ++n) {
      if (row.asymmetric) {
        // Per-direction: low id -> high id runs degraded, the reverse path
        // stays on the clean default.
        for (NodeId i = 0; i < 4; ++i) {
          for (NodeId j = static_cast<NodeId>(i + 1); j < 4; ++j) {
            cluster.network(n).set_link_profile(i, j, row.profile);
          }
        }
      } else {
        cluster.network(n).set_default_profile(row.profile);
      }
    }

    cluster.start_all();
    SaturationDriver driver(cluster, {.message_size = 1024, .queue_target = 256});
    driver.start();
    // Warmup: ring forms, advisor sees >= min_samples rotations, timers adapt.
    cluster.run_for(Duration{1'000'000});

    const Duration window{2'000'000};
    const double window_s =
        std::chrono::duration<double>(window).count();

    cluster.clear_recordings();
    cluster.run_for(window);
    pps_before = static_cast<double>(cluster.delivered_count(0)) / window_s;

    std::vector<HistogramSnapshot> base;
    double p99_sum = 0;
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      base.push_back(delivery_hist(cluster.node(i)));
      p99_sum += base.back().p99();
    }
    p99_before = p99_sum / static_cast<double>(cluster.node_count());

    // ---- the switch: network 0 dies mid-traffic ----
    cluster.clear_recordings();
    const TimePoint failed_at = cluster.simulator().now();
    cluster.network(0).fail();
    cluster.run_for(window);
    pps_during = static_cast<double>(cluster.delivered_count(0)) / window_s;

    if (!cluster.faults().empty()) {
      detection = std::chrono::duration<double, std::milli>(
                      cluster.faults().front().report.when - failed_at)
                      .count();
    }

    HistogramSnapshot during_total;  // summed deltas across nodes
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      const HistogramSnapshot delta =
          hist_delta(base[i], delivery_hist(cluster.node(i)));
      msgs_delayed += static_cast<double>(count_above(delta, base[i].p99()));
      during_total.count += delta.count;
      during_total.sum += delta.sum;
      during_total.max = std::max(during_total.max, delta.max);
      for (std::size_t b = 0; b < delta.buckets.size(); ++b) {
        during_total.buckets[b] += delta.buckets[b];
      }
    }
    p50_during = during_total.p50();
    p99_during = during_total.p99();

    // ---- the administrator repairs; measure time-to-reinstate ----
    std::vector<std::uint64_t> rx_at_repair;
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      rx_at_repair.push_back(cluster.transports(i)[0]->stats().packets_received);
    }
    const TimePoint repaired_at = cluster.simulator().now();
    cluster.network(0).recover();
    for (std::size_t i = 0; i < cluster.node_count(); ++i) {
      cluster.node(i).replicator().reset_network(0);
    }
    for (int step = 0; step < 200; ++step) {  // cap: 2 s
      cluster.run_for(Duration{10'000});
      bool all = true;
      for (std::size_t i = 0; i < cluster.node_count(); ++i) {
        if (cluster.transports(i)[0]->stats().packets_received <= rx_at_repair[i] ||
            cluster.node(i).replicator().network_faulty(0)) {
          all = false;
          break;
        }
      }
      if (all) {
        reinstate = std::chrono::duration<double, std::milli>(
                        cluster.simulator().now() - repaired_at)
                        .count();
        break;
      }
    }

    cluster.clear_recordings();
    cluster.run_for(window);
    pps_after = static_cast<double>(cluster.delivered_count(0)) / window_s;
  }

  state.counters["pps_before"] = pps_before;
  state.counters["pps_during"] = pps_during;
  state.counters["pps_after"] = pps_after;
  state.counters["detection_ms"] = detection;
  state.counters["reinstate_ms"] = reinstate;
  state.counters["msgs_delayed"] = msgs_delayed;
  state.counters["p99_before_us"] = p99_before;
  state.counters["p50_during_us"] = p50_during;
  state.counters["p99_during_us"] = p99_during;
  state.SetLabel(std::string(to_string(style)) + "/" + row.name);
}
BENCHMARK(BM_FailoverSwitchover)
    ->ArgsProduct({{static_cast<int>(api::ReplicationStyle::kActive),
                    static_cast<int>(api::ReplicationStyle::kPassive),
                    static_cast<int>(api::ReplicationStyle::kActivePassive)},
                   {0, 1, 2, 3}})
    ->ArgNames({"style", "profile"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("failover_switchover")

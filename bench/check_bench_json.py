#!/usr/bin/env python3
"""Run a bench binary with --json=PATH and validate the report.

Usage: check_bench_json.py <bench-binary> <json-path> [--flag ...] [counter ...]

Arguments starting with "--" are passed through to the bench binary (e.g.
--benchmark_filter=... or a harness's --totemd=...); the rest are required
counter names.

Checks: the process exits 0, the file parses as JSON, the top-level schema
(bench/config/results) is present, results is non-empty, and every listed
counter key appears in at least one result. Exits nonzero with a message on
the first failure so ctest localizes it.
"""
import json
import subprocess
import sys


def fail(msg: str) -> None:
    print(f"check_bench_json: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) < 3:
        fail(f"usage: {sys.argv[0]} <bench-binary> <json-path> [counter ...]")
    binary, path = sys.argv[1], sys.argv[2]
    passthrough = [a for a in sys.argv[3:] if a.startswith("--")]
    required_counters = [a for a in sys.argv[3:] if not a.startswith("--")]

    proc = subprocess.run([binary, f"--json={path}", *passthrough], timeout=600)
    if proc.returncode != 0:
        fail(f"{binary} exited {proc.returncode}")

    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    for key in ("bench", "config", "results"):
        if key not in report:
            fail(f"missing top-level key '{key}' in {path}")
    if not report["results"]:
        fail("results array is empty")
    for result in report["results"]:
        for key in ("name", "iterations", "real_time_ms", "counters"):
            if key not in result:
                fail(f"result missing key '{key}': {result}")
    seen = set()
    for result in report["results"]:
        seen.update(result["counters"])
    for counter in required_counters:
        if counter not in seen:
            fail(f"counter '{counter}' absent from every result (saw {sorted(seen)})")
    print(f"ok: {path} ({len(report['results'])} results)")


if __name__ == "__main__":
    main()

// Failover transparency (paper §1/§3): "The partial or total failure of a
// network remains transparent to the application processes. The distributed
// system remains operational while an administrator reacts."
//
// This bench kills one network under load and quantifies the transparency:
//   * throughput_before / throughput_after  (msgs/s at node 0)
//   * max_stall_ms  — worst application-visible delivery gap across the
//                     failure instant
//   * detection_ms  — time until the first administrator alarm
// Compare with reconfigure_ms for a NODE crash (which legitimately requires
// a membership change) to see what the redundant networks buy.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "harness/calibration.h"
#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

void BM_NetworkFailover(benchmark::State& state) {
  const auto style = static_cast<api::ReplicationStyle>(state.range(0));
  double before = 0, after = 0, max_stall = 0, detection = -1;

  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.node_count = 4;
    cfg.network_count = style == api::ReplicationStyle::kActivePassive ? 3 : 2;
    cfg.style = style;
    cfg.net_params = paper_net_params();
    cfg.host_costs = paper_host_costs();
    apply_paper_srp_costs(cfg.srp);
    cfg.record_payloads = false;
    SimCluster cluster(cfg);
    cluster.start_all();
    SaturationDriver driver(cluster, {.message_size = 1024, .queue_target = 256});
    driver.start();
    cluster.run_for(Duration{300'000});

    cluster.clear_recordings();
    cluster.run_for(Duration{1'000'000});
    before = static_cast<double>(cluster.delivered_count(0));

    cluster.clear_recordings();
    const TimePoint failed_at = cluster.simulator().now();
    cluster.network(0).fail();
    cluster.run_for(Duration{1'000'000});
    after = static_cast<double>(cluster.delivered_count(0));

    TimePoint last = failed_at;
    Duration gap{0};
    for (const auto& d : cluster.deliveries(0)) {
      gap = std::max(gap, d.when - last);
      last = d.when;
    }
    max_stall = std::chrono::duration<double, std::milli>(gap).count();
    if (!cluster.faults().empty()) {
      detection = std::chrono::duration<double, std::milli>(
                      cluster.faults().front().report.when - failed_at)
                      .count();
    }
  }
  state.counters["msgs_before"] = before;
  state.counters["msgs_after"] = after;
  state.counters["max_stall_ms"] = max_stall;
  state.counters["detection_ms"] = detection;
  state.SetLabel(to_string(style));
}
BENCHMARK(BM_NetworkFailover)
    ->Arg(static_cast<int>(api::ReplicationStyle::kActive))
    ->Arg(static_cast<int>(api::ReplicationStyle::kPassive))
    ->Arg(static_cast<int>(api::ReplicationStyle::kActivePassive))
    ->ArgNames({"style"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_NodeCrashReconfiguration(benchmark::State& state) {
  // Contrast case: a NODE crash does force a membership change; measure how
  // long the ring is stalled.
  double reconfigure_ms = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.node_count = 4;
    cfg.network_count = 2;
    cfg.style = api::ReplicationStyle::kActive;
    cfg.net_params = paper_net_params();
    cfg.host_costs = paper_host_costs();
    apply_paper_srp_costs(cfg.srp);
    cfg.srp.token_loss_timeout = Duration{100'000};
    cfg.srp.consensus_timeout = Duration{100'000};
    cfg.record_payloads = false;
    SimCluster cluster(cfg);
    cluster.start_all();
    SaturationDriver driver(cluster, {.message_size = 1024, .queue_target = 256});
    driver.start();
    cluster.run_for(Duration{300'000});

    cluster.clear_recordings();
    const TimePoint crashed_at = cluster.simulator().now();
    cluster.crash(3);
    cluster.run_for(Duration{5'000'000});
    // Stall = gap until the first post-crash delivery at node 0.
    TimePoint first_after = crashed_at + Duration{5'000'000};
    for (const auto& d : cluster.deliveries(0)) {
      if (d.when > crashed_at) {
        first_after = d.when;
        break;
      }
    }
    reconfigure_ms =
        std::chrono::duration<double, std::milli>(first_after - crashed_at).count();
  }
  state.counters["reconfigure_ms"] = reconfigure_ms;
}
BENCHMARK(BM_NodeCrashReconfiguration)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("failover_transparency")

// Ablation: the RRP token timers.
//
// §6 of the paper chose a 10 ms token-buffer timeout for passive
// replication: "To provide fast recovery from message loss, the timer's
// timeout must be small." This bench sweeps that timeout (and active
// replication's copy-collection timeout) under lossy networks and reports
// throughput and worst-case delivery stall — making the paper's timing
// choice inspectable.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "harness/calibration.h"
#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

struct StallStats {
  double msgs_per_sec = 0;
  double max_stall_ms = 0;  // worst inter-delivery gap at node 0
};

StallStats run_lossy(api::ReplicationStyle style, Duration timeout, double loss) {
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = style;
  cfg.net_params = paper_net_params();
  cfg.net_params.loss_rate = loss;
  cfg.host_costs = paper_host_costs();
  apply_paper_srp_costs(cfg.srp);
  cfg.record_payloads = false;
  if (style == api::ReplicationStyle::kPassive) {
    cfg.passive.token_buffer_timeout = timeout;
  } else {
    cfg.active.token_timeout = timeout;
  }
  SimCluster cluster(cfg);
  cluster.start_all();
  SaturationDriver driver(cluster, {.message_size = 1024, .queue_target = 256});
  driver.start();
  cluster.run_for(Duration{200'000});
  cluster.clear_recordings();

  // Sample delivery gaps over one simulated second.
  const Duration measured{1'000'000};
  TimePoint last = cluster.simulator().now();
  Duration max_gap{0};
  std::uint64_t count = 0;
  // Re-register a lightweight handler via the recorded deliveries: we use
  // the recording timestamps instead.
  cluster.run_for(measured);
  StallStats out;
  out.msgs_per_sec = static_cast<double>(cluster.delivered_count(0));
  for (const auto& d : cluster.deliveries(0)) {
    (void)count;
    max_gap = std::max(max_gap, d.when - last);
    last = d.when;
  }
  out.max_stall_ms = std::chrono::duration<double, std::milli>(max_gap).count();
  return out;
}

void BM_PassiveTokenBufferTimeout(benchmark::State& state) {
  const Duration timeout{state.range(0)};
  StallStats s;
  for (auto _ : state) {
    s = run_lossy(api::ReplicationStyle::kPassive, timeout, 0.01);
  }
  state.counters["msgs_per_sec"] = s.msgs_per_sec;
  state.counters["max_stall_ms"] = s.max_stall_ms;
}
BENCHMARK(BM_PassiveTokenBufferTimeout)
    ->Arg(1'000)    // 1 ms
    ->Arg(5'000)
    ->Arg(10'000)   // the paper's choice
    ->Arg(20'000)
    ->Arg(50'000)
    ->ArgNames({"timeout_us"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ActiveTokenTimeout(benchmark::State& state) {
  const Duration timeout{state.range(0)};
  StallStats s;
  for (auto _ : state) {
    s = run_lossy(api::ReplicationStyle::kActive, timeout, 0.01);
  }
  state.counters["msgs_per_sec"] = s.msgs_per_sec;
  state.counters["max_stall_ms"] = s.max_stall_ms;
}
BENCHMARK(BM_ActiveTokenTimeout)
    ->Arg(500)
    ->Arg(2'000)
    ->Arg(10'000)
    ->Arg(50'000)
    ->ArgNames({"timeout_us"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("ablation_token_timer")

// Figure 6: Transmission rate of the Totem RRP in msgs/sec for FOUR nodes,
// as a function of message length, for {no, active, passive} replication.
//
// Expected shape (paper §8): passive > none > active across the sweep;
// packing peaks at 700- and 1400-byte messages; msgs/sec falls roughly
// inversely with message length once the wire binds.
#include "figure_common.h"

namespace totem::harness {
namespace {

void BM_Fig6_SendRate_4Nodes(benchmark::State& state) { figure_bench(state, 4); }
BENCHMARK(BM_Fig6_SendRate_4Nodes)->Apply(register_figure_args);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("fig6_sendrate_4nodes")

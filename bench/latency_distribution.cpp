// Message delivery latency distribution (paper §4's qualitative claims made
// quantitative):
//   * Active replication "is able to mask the loss of a message on up to
//     N-1 networks WITHOUT any message retransmission delay" — its tail
//     latency under loss stays near its median.
//   * Passive replication: "If a message is lost, Totem must wait until the
//     message has been retransmitted" — its tail stretches by token-
//     rotation + buffer-timeout delays.
// Light load (latency-, not throughput-bound), 2% loss on network 0.
// Reports p50 / p99 / max send-to-deliver latency observed at node 0.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include <algorithm>

#include "harness/calibration.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

struct LatencyStats {
  double p50_us = 0, p99_us = 0, max_us = 0;
  std::size_t samples = 0;
};

LatencyStats run_latency(api::ReplicationStyle style, double loss_on_net0) {
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = style == api::ReplicationStyle::kActivePassive ? 3 : 2;
  cfg.style = style;
  cfg.net_params = paper_net_params();
  cfg.host_costs = paper_host_costs();
  apply_paper_srp_costs(cfg.srp);
  cfg.record_payloads = false;
  SimCluster cluster(cfg);
  cluster.network(0).set_loss_rate(loss_on_net0);

  // Send timestamps ride inside the payload; node 0 computes latency.
  std::vector<double> latencies;
  cluster.set_app_deliver_handler(0, [&](const srp::DeliveredMessage& m) {
    ByteReader r(m.payload);
    auto sent_us = r.u64();
    if (!sent_us) return;
    const auto now_us =
        static_cast<std::uint64_t>(cluster.simulator().now().time_since_epoch().count());
    latencies.push_back(static_cast<double>(now_us - sent_us.value()));
  });
  cluster.start_all();

  // ~2,000 msgs/s aggregate from nodes 1..3 (node 0 only receives, so the
  // path under test always crosses the network).
  Rng rng(42);
  std::function<void(std::size_t)> send_one = [&](std::size_t n) {
    ByteWriter w;
    w.u64(static_cast<std::uint64_t>(cluster.simulator().now().time_since_epoch().count()));
    w.raw(Bytes(192, std::byte{0x55}));
    (void)cluster.node(n).send(w.view());
    cluster.simulator().schedule(Duration{1'200 + rng.next_below(600)},
                                 [&send_one, n] { send_one(n); });
  };
  for (std::size_t n = 1; n < cluster.node_count(); ++n) send_one(n);

  cluster.run_for(Duration{200'000});
  latencies.clear();
  cluster.run_for(Duration{3'000'000});

  LatencyStats out;
  out.samples = latencies.size();
  if (latencies.empty()) return out;
  std::sort(latencies.begin(), latencies.end());
  out.p50_us = latencies[latencies.size() / 2];
  out.p99_us = latencies[latencies.size() * 99 / 100];
  out.max_us = latencies.back();
  return out;
}

void BM_DeliveryLatency(benchmark::State& state) {
  const auto style = static_cast<api::ReplicationStyle>(state.range(0));
  const double loss = static_cast<double>(state.range(1)) / 100.0;
  LatencyStats s;
  for (auto _ : state) {
    s = run_latency(style, loss);
  }
  state.counters["p50_us"] = s.p50_us;
  state.counters["p99_us"] = s.p99_us;
  state.counters["max_us"] = s.max_us;
  state.counters["samples"] = static_cast<double>(s.samples);
  state.SetLabel(to_string(style));
}
BENCHMARK(BM_DeliveryLatency)
    ->ArgsProduct({{static_cast<int>(api::ReplicationStyle::kNone),
                    static_cast<int>(api::ReplicationStyle::kActive),
                    static_cast<int>(api::ReplicationStyle::kPassive),
                    static_cast<int>(api::ReplicationStyle::kActivePassive)},
                   {0, 2}})
    ->ArgNames({"style", "loss_pct"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("latency_distribution")

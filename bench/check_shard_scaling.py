#!/usr/bin/env python3
"""Validate the sharded KV bench's scaling claims from its JSON reports.

Usage: check_shard_scaling.py <sharded-json> <single-ring-json> [sim-ratio-floor]

Reads BENCH_kv_sharded_closed_loop.json and BENCH_kv_closed_loop.json
(both produced by their schema-check runs — ctest FIXTURES make those run
first, so this gate never re-runs a bench) and enforces:

  * SIM — sharded ops/s at 4 shards >= <sim-ratio-floor> x ops/s at
    1 shard (default 3.0). Sim rings are identical up to seed, so anything
    much below linear means the router or the lockstep harness is
    serializing work that should be parallel.
  * UDP — the 4-shard deployment's aggregate ops/s holds within a bounded
    router tax of the best single-ring kv_closed_loop row on the same
    loopback substrate (4-shard >= 0.85 x best single-ring). Both benches
    run every ring on ONE reactor thread, so in-process wall-clock
    throughput is capped by one core no matter how many shards exist —
    the sim sweep carries the scaling claim; this gate proves the router
    and the extra rings cost at most measurement noise on real sockets.
    (A real deployment runs one process per shard; see EXPERIMENTS.md
    section 14.)

Exits nonzero with a message on the first failure so ctest localizes it.
"""
import json
import sys


def fail(msg: str) -> None:
    print(f"check_shard_scaling: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")


def sharded_ops_by_shards(results, label):
    out = {}
    for r in results:
        if r.get("label") != label:
            continue
        counters = r.get("counters", {})
        if "shards" not in counters or "ops_per_sec" not in counters:
            fail(f"{label} result missing shards/ops_per_sec counters: {r['name']}")
        out[int(counters["shards"])] = float(counters["ops_per_sec"])
    return out


def main() -> None:
    if len(sys.argv) < 3:
        fail(f"usage: {sys.argv[0]} <sharded-json> <single-ring-json> [sim-ratio-floor]")
    sharded_path, baseline_path = sys.argv[1], sys.argv[2]
    floor = float(sys.argv[3]) if len(sys.argv) > 3 else 3.0

    sharded = load(sharded_path)

    sim = sharded_ops_by_shards(sharded.get("results", []), "sim")
    for shards in (1, 4):
        if shards not in sim:
            fail(f"no sim result for {shards} shard(s) in {sharded_path}")
        if sim[shards] <= 0:
            fail(f"sim {shards}-shard ops_per_sec is {sim[shards]}")
    ratio = sim[4] / sim[1]
    if ratio < floor:
        fail(
            f"sim scaling {ratio:.2f}x below the {floor:.1f}x floor "
            f"(1 shard: {sim[1]:.0f} ops/s, 4 shards: {sim[4]:.0f} ops/s)"
        )

    udp = sharded_ops_by_shards(sharded.get("results", []), "udp")
    if 4 not in udp:
        fail(f"no udp result for 4 shards in {sharded_path}")

    baseline = load(baseline_path)
    base_rows = [
        float(r["counters"]["ops_per_sec"])
        for r in baseline.get("results", [])
        if r.get("label") == "udp" and "ops_per_sec" in r.get("counters", {})
    ]
    if not base_rows:
        fail(f"no udp ops_per_sec rows in {baseline_path}")
    best_single = max(base_rows)
    udp_floor = 0.85  # bounded router tax; see module docstring
    if udp[4] < udp_floor * best_single:
        fail(
            f"udp 4-shard throughput {udp[4]:.0f} ops/s fell below "
            f"{udp_floor:.2f}x the best single-ring baseline "
            f"{best_single:.0f} ops/s — the router or the extra rings are "
            f"taxing the datapath beyond measurement noise"
        )

    print(
        f"ok: sim 4/1 scaling {ratio:.2f}x (floor {floor:.1f}x), "
        f"udp 4 shards {udp[4]:.0f} ops/s vs single-ring best "
        f"{best_single:.0f} ({udp[4] / best_single:.2f}x, floor {udp_floor:.2f}x)"
    )


if __name__ == "__main__":
    main()

// Active-passive replication sweep (paper §7).
//
// The paper implemented active-passive replication but could not evaluate it
// ("it requires a minimum of three networks and we had only two networks
// available to us", §8). The simulated substrate has no such constraint:
// this bench completes the paper's evaluation matrix with N=3 networks,
// comparing K=2 active-passive against the pure styles, plus a K sweep on
// N=4 networks. Expected shape: active-passive interpolates — bandwidth
// cost and loss-masking between passive (K=1-like) and active (K=N).
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "figure_common.h"

namespace totem::harness {
namespace {

FigurePoint run_ap_point(std::size_t nodes, std::size_t networks, std::uint32_t k,
                         std::size_t message_size) {
  ClusterConfig cfg;
  cfg.node_count = nodes;
  cfg.network_count = networks;
  cfg.style = api::ReplicationStyle::kActivePassive;
  cfg.active_passive.k = k;
  cfg.net_params = paper_net_params();
  cfg.host_costs = paper_host_costs();
  apply_paper_srp_costs(cfg.srp);
  cfg.record_payloads = false;
  SimCluster cluster(cfg);
  cluster.start_all();
  SaturationDriver driver(cluster, {.message_size = message_size, .queue_target = 256});
  driver.start();
  cluster.run_for(Duration{200'000});
  cluster.clear_recordings();
  const Duration measured{1'000'000};
  cluster.run_for(measured);
  const double seconds = std::chrono::duration<double>(measured).count();
  FigurePoint p;
  p.msgs_per_sec = static_cast<double>(cluster.delivered_count(0)) / seconds;
  p.kbytes_per_sec = static_cast<double>(cluster.delivered_bytes(0)) / 1024.0 / seconds;
  return p;
}

void BM_ThreeNetworkComparison(benchmark::State& state) {
  // none / active / passive / active-passive(K=2), all with 3 networks
  // (style 3 == active-passive handled separately for the K parameter).
  const auto style = static_cast<api::ReplicationStyle>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));
  FigurePoint p;
  for (auto _ : state) {
    if (style == api::ReplicationStyle::kActivePassive) {
      p = run_ap_point(4, 3, 2, size);
    } else {
      p = run_figure_point(4, style, size, 3);
    }
  }
  state.counters["msgs_per_sec"] = p.msgs_per_sec;
  state.counters["kbytes_per_sec"] = p.kbytes_per_sec;
  state.SetLabel(to_string(style));
}
BENCHMARK(BM_ThreeNetworkComparison)
    ->ArgsProduct({{static_cast<int>(api::ReplicationStyle::kNone),
                    static_cast<int>(api::ReplicationStyle::kActive),
                    static_cast<int>(api::ReplicationStyle::kPassive),
                    static_cast<int>(api::ReplicationStyle::kActivePassive)},
                   {200, 1000, 4000}})
    ->ArgNames({"style", "msg_len"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_KSweepFourNetworks(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  FigurePoint p;
  for (auto _ : state) {
    p = run_ap_point(4, 4, k, 1000);
  }
  state.counters["msgs_per_sec"] = p.msgs_per_sec;
  state.counters["kbytes_per_sec"] = p.kbytes_per_sec;
}
BENCHMARK(BM_KSweepFourNetworks)
    ->Arg(2)
    ->Arg(3)
    ->ArgNames({"k"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("active_passive_sweep")

// Machine-readable benchmark output: every bench binary writes
// BENCH_<name>.json next to its console table, so figure regeneration is a
// file parse instead of a console scrape (see EXPERIMENTS.md).
//
// Usage: replace BENCHMARK_MAIN() with TOTEM_BENCH_MAIN("bench_name").
// The JSON lands in ./BENCH_<bench_name>.json; --json=PATH overrides the
// destination (the flag is stripped before Google Benchmark sees argv).
//
// Schema:
//   {
//     "bench": "<name>",
//     "config": { "command": "<argv as invoked>", "output": "<path>" },
//     "results": [
//       { "name": "BM_X/style:1", "label": "active", "iterations": 1,
//         "real_time_ms": ..., "cpu_time_ms": ...,
//         "counters": { "msgs_per_sec": ..., "p50_delivery_us": ... } }
//     ]
//   }
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace totem::bench {

/// Console output passes through unchanged; every finished run is also
/// captured for the JSON report.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    runs_.insert(runs_.end(), reports.begin(), reports.end());
    ConsoleReporter::ReportRuns(reports);
  }
  [[nodiscard]] const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

inline std::string render_report(const std::string& bench_name,
                                 const std::string& command,
                                 const std::string& output_path,
                                 const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  JsonWriter w;
  w.begin_object();
  w.kv("bench", bench_name);
  w.key("config");
  w.begin_object();
  w.kv("command", command);
  w.kv("output", output_path);
  w.end_object();
  w.key("results");
  w.begin_array();
  for (const auto& r : runs) {
    w.begin_object();
    w.kv("name", r.benchmark_name());
    if (!r.report_label.empty()) w.kv("label", r.report_label);
    w.kv("iterations", static_cast<std::int64_t>(r.iterations));
    // Accumulated times are seconds; report per-iteration milliseconds to
    // match the console table's kMillisecond unit.
    const double iters = r.iterations > 0 ? static_cast<double>(r.iterations) : 1.0;
    w.kv("real_time_ms", r.real_accumulated_time / iters * 1e3);
    w.kv("cpu_time_ms", r.cpu_accumulated_time / iters * 1e3);
    w.key("counters");
    w.begin_object();
    for (const auto& [cname, counter] : r.counters) {
      w.kv(cname.c_str(), static_cast<double>(counter.value));
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

inline int bench_main(const std::string& bench_name, int argc, char** argv) {
  std::string json_path = "BENCH_" + bench_name + ".json";
  std::string command;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0) command += ' ';
    command += argv[i];
    const std::string_view a = argv[i];
    if (a == "--json") continue;  // default path
    if (a.rfind("--json=", 0) == 0) {
      json_path = std::string(a.substr(7));
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;

  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::ofstream out(json_path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << render_report(bench_name, command, json_path, reporter.runs()) << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return out ? 0 : 1;
}

}  // namespace totem::bench

#define TOTEM_BENCH_MAIN(bench_name)                           \
  int main(int argc, char** argv) {                            \
    return totem::bench::bench_main(bench_name, argc, argv);   \
  }

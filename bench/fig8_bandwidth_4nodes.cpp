// Figure 8: Utilized bandwidth of the Totem RRP in Kbytes/sec for FOUR
// nodes. Same runs as Figure 6 viewed in bandwidth terms: passive exceeds
// the capacity of a single 100 Mbit/s Ethernet but stays well below 2x
// (protocol processing becomes the bottleneck); active trails the
// unreplicated system because every packet costs two network-stack calls.
#include "figure_common.h"

namespace totem::harness {
namespace {

void BM_Fig8_Bandwidth_4Nodes(benchmark::State& state) { figure_bench(state, 4); }
BENCHMARK(BM_Fig8_Bandwidth_4Nodes)->Apply(register_figure_args);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("fig8_bandwidth_4nodes")

// Headline anchor (paper §2): an unreplicated 4-node Totem ring on a
// 100 Mbit/s Ethernet delivers more than 9,000 1-Kbyte msgs/sec — close to
// 90% wire utilization. This bench regenerates that number on the simulated
// substrate and is the calibration anchor for Figures 6-9.
//
// Besides throughput it reports node 0's send->deliver latency and token
// rotation percentiles over the measured second (from the node's metrics
// registry), and writes everything to BENCH_headline_srp_saturation.json.
//
// Each style runs twice: traced:0 (flight recorder disabled) and traced:1
// (a deep per-node TraceRing recording every protocol event). In the
// simulated substrate the two rows MUST agree on throughput — tracing is
// observability, and any delta means a recorder started feeding back into
// protocol behavior. check_trace_overhead.py gates the delta at <2%.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_report.h"
#include "harness/calibration.h"
#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

void BM_HeadlineSaturation(benchmark::State& state) {
  const auto style = static_cast<api::ReplicationStyle>(state.range(0));
  const bool traced = state.range(1) != 0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  double sim_seconds = 0;
  double utilization = 0;
  std::uint64_t trace_events = 0;
  MetricsSnapshot metrics;

  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.node_count = 4;
    cfg.network_count = style == api::ReplicationStyle::kNone ? 1 : 2;
    cfg.style = style;
    cfg.net_params = paper_net_params();
    cfg.host_costs = paper_host_costs();
    apply_paper_srp_costs(cfg.srp);
    cfg.record_payloads = false;
    // traced:1 = a deep flight recorder on every node; traced:0 = no
    // recorder at all (not even the default small ring).
    cfg.trace_capacity = traced ? (std::size_t{1} << 14) : 0;
    SimCluster cluster(cfg);
    cluster.start_all();

    SaturationDriver driver(cluster, {.message_size = 1024, .queue_target = 256});
    driver.start();
    cluster.run_for(Duration{200'000});  // warm-up
    cluster.clear_recordings();
    cluster.node(0).metrics().reset();   // percentiles cover the measured window only
    const Duration measured{1'000'000};  // 1 simulated second
    const auto wire_before = cluster.network(0).stats().wire_busy;
    cluster.run_for(measured);
    const auto wire_after = cluster.network(0).stats().wire_busy;

    msgs = cluster.delivered_count(0);
    bytes = cluster.delivered_bytes(0);
    sim_seconds = std::chrono::duration<double>(measured).count();
    utilization =
        std::chrono::duration<double>(wire_after - wire_before).count() / sim_seconds;
    metrics = cluster.node(0).metrics().snapshot();
    if (traced) {
      for (std::size_t n = 0; n < cfg.node_count; ++n) {
        trace_events += cluster.trace(n)->total_emitted();
      }
    }
  }

  state.counters["msgs_per_sec"] = static_cast<double>(msgs) / sim_seconds;
  state.counters["kbytes_per_sec"] = static_cast<double>(bytes) / 1024.0 / sim_seconds;
  state.counters["net0_utilization"] = utilization;
  if (const auto* d = metrics.find_histogram("srp.delivery_latency_us")) {
    state.counters["p50_delivery_us"] = d->p50();
    state.counters["p99_delivery_us"] = d->p99();
  }
  if (const auto* r = metrics.find_histogram("srp.token_rotation_us")) {
    state.counters["p50_rotation_us"] = r->p50();
    state.counters["p99_rotation_us"] = r->p99();
  }
  state.counters["traced"] = traced ? 1 : 0;
  if (traced) state.counters["trace_events"] = static_cast<double>(trace_events);
  state.SetLabel(std::string(to_string(style)) + (traced ? "+traced" : ""));
}

BENCHMARK(BM_HeadlineSaturation)
    ->Args({static_cast<int>(api::ReplicationStyle::kNone), 0})
    ->Args({static_cast<int>(api::ReplicationStyle::kNone), 1})
    ->Args({static_cast<int>(api::ReplicationStyle::kActive), 0})
    ->Args({static_cast<int>(api::ReplicationStyle::kActive), 1})
    ->Args({static_cast<int>(api::ReplicationStyle::kPassive), 0})
    ->Args({static_cast<int>(api::ReplicationStyle::kPassive), 1})
    ->ArgNames({"style", "traced"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// Message-size sweep, 16 B - 1 MB: everything above
// wire::kMaxUnfragmentedPayload travels the fragment/reassembly path, which
// no other bench exercises under sustained load. Unreplicated ring, same
// paper-calibrated substrate as the headline rows.
void BM_MessageSizeSweep(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  double sim_seconds = 0;
  MetricsSnapshot metrics;

  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.node_count = 4;
    cfg.network_count = 1;
    cfg.style = api::ReplicationStyle::kNone;
    cfg.net_params = paper_net_params();
    cfg.host_costs = paper_host_costs();
    apply_paper_srp_costs(cfg.srp);
    cfg.record_payloads = false;
    cfg.trace_capacity = 0;
    SimCluster cluster(cfg);
    cluster.start_all();

    // Keep roughly a fixed number of bytes queued regardless of message
    // size — 256 one-MB entries would be pure memory pressure, not load.
    const std::size_t target = std::clamp<std::size_t>((1u << 18) / size, 2, 256);
    SaturationDriver driver(cluster, {.message_size = size, .queue_target = target});
    driver.start();
    cluster.run_for(Duration{200'000});  // warm-up
    cluster.clear_recordings();
    cluster.node(0).metrics().reset();
    const Duration measured{1'000'000};  // 1 simulated second
    cluster.run_for(measured);

    msgs = cluster.delivered_count(0);
    bytes = cluster.delivered_bytes(0);
    sim_seconds = std::chrono::duration<double>(measured).count();
    metrics = cluster.node(0).metrics().snapshot();
  }

  state.counters["message_bytes"] = static_cast<double>(size);
  state.counters["msgs_per_sec"] = static_cast<double>(msgs) / sim_seconds;
  state.counters["kbytes_per_sec"] = static_cast<double>(bytes) / 1024.0 / sim_seconds;
  if (const auto* d = metrics.find_histogram("srp.delivery_latency_us")) {
    state.counters["p50_delivery_us"] = d->p50();
    state.counters["p99_delivery_us"] = d->p99();
  }
  state.SetLabel(std::to_string(size) + "B");
}

BENCHMARK(BM_MessageSizeSweep)
    ->Arg(16)
    ->Arg(256)
    ->Arg(4 << 10)
    ->Arg(64 << 10)
    ->Arg(1 << 20)
    ->ArgNames({"size"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("headline_srp_saturation")

// Headline anchor (paper §2): an unreplicated 4-node Totem ring on a
// 100 Mbit/s Ethernet delivers more than 9,000 1-Kbyte msgs/sec — close to
// 90% wire utilization. This bench regenerates that number on the simulated
// substrate and is the calibration anchor for Figures 6-9.
#include <benchmark/benchmark.h>

#include "harness/calibration.h"
#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

void BM_HeadlineSaturation(benchmark::State& state) {
  const auto style = static_cast<api::ReplicationStyle>(state.range(0));
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  double sim_seconds = 0;
  double utilization = 0;

  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.node_count = 4;
    cfg.network_count = style == api::ReplicationStyle::kNone ? 1 : 2;
    cfg.style = style;
    cfg.net_params = paper_net_params();
    cfg.host_costs = paper_host_costs();
    apply_paper_srp_costs(cfg.srp);
    cfg.record_payloads = false;
    SimCluster cluster(cfg);
    cluster.start_all();

    SaturationDriver driver(cluster, {.message_size = 1024, .queue_target = 256});
    driver.start();
    cluster.run_for(Duration{200'000});  // warm-up
    cluster.clear_recordings();
    const Duration measured{1'000'000};  // 1 simulated second
    const auto wire_before = cluster.network(0).stats().wire_busy;
    cluster.run_for(measured);
    const auto wire_after = cluster.network(0).stats().wire_busy;

    msgs = cluster.delivered_count(0);
    bytes = cluster.delivered_bytes(0);
    sim_seconds = std::chrono::duration<double>(measured).count();
    utilization =
        std::chrono::duration<double>(wire_after - wire_before).count() / sim_seconds;
  }

  state.counters["msgs_per_sec"] = static_cast<double>(msgs) / sim_seconds;
  state.counters["kbytes_per_sec"] = static_cast<double>(bytes) / 1024.0 / sim_seconds;
  state.counters["net0_utilization"] = utilization;
}

BENCHMARK(BM_HeadlineSaturation)
    ->Arg(static_cast<int>(api::ReplicationStyle::kNone))
    ->Arg(static_cast<int>(api::ReplicationStyle::kActive))
    ->Arg(static_cast<int>(api::ReplicationStyle::kPassive))
    ->ArgNames({"style"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace totem::harness

BENCHMARK_MAIN();

// Scalability extension: the paper measured 4 and 6 nodes; the simulated
// substrate lets us sweep ring size. Expected behaviour: total throughput is
// nearly flat in ring size (the ring is a shared medium; more nodes only add
// token hops), while per-node share and token rotation time scale ~1/n and
// ~n respectively.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "figure_common.h"

namespace totem::harness {
namespace {

void BM_RingSizeSweep(benchmark::State& state) {
  const auto style = static_cast<api::ReplicationStyle>(state.range(0));
  const auto nodes = static_cast<std::size_t>(state.range(1));
  FigurePoint p;
  double rotations_per_sec = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.node_count = nodes;
    cfg.network_count = style == api::ReplicationStyle::kNone ? 1 : 2;
    cfg.style = style;
    cfg.net_params = paper_net_params();
    cfg.host_costs = paper_host_costs();
    apply_paper_srp_costs(cfg.srp);
    cfg.record_payloads = false;
    SimCluster cluster(cfg);
    cluster.start_all();
    SaturationDriver driver(cluster, {.message_size = 1024, .queue_target = 256});
    driver.start();
    cluster.run_for(Duration{200'000});
    cluster.clear_recordings();
    const auto tokens_before = cluster.node(0).ring().stats().tokens_processed;
    const Duration measured{1'000'000};
    cluster.run_for(measured);
    const double seconds = std::chrono::duration<double>(measured).count();
    p.msgs_per_sec = static_cast<double>(cluster.delivered_count(0)) / seconds;
    p.kbytes_per_sec = static_cast<double>(cluster.delivered_bytes(0)) / 1024.0 / seconds;
    rotations_per_sec =
        static_cast<double>(cluster.node(0).ring().stats().tokens_processed -
                            tokens_before) /
        seconds;
  }
  state.counters["msgs_per_sec"] = p.msgs_per_sec;
  state.counters["rotations_per_sec"] = rotations_per_sec;
  state.counters["msgs_per_rotation"] =
      rotations_per_sec > 0 ? p.msgs_per_sec / rotations_per_sec : 0;
  state.SetLabel(to_string(style));
}
BENCHMARK(BM_RingSizeSweep)
    ->ArgsProduct({{static_cast<int>(api::ReplicationStyle::kNone),
                    static_cast<int>(api::ReplicationStyle::kActive),
                    static_cast<int>(api::ReplicationStyle::kPassive)},
                   {2, 4, 6, 8, 12}})
    ->ArgNames({"style", "nodes"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("scalability_sweep")

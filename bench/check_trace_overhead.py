#!/usr/bin/env python3
"""Run headline_srp_saturation --json and gate the tracing overhead.

Usage: check_trace_overhead.py <bench-binary> <json-path> [max-delta-pct]

Pairs each style's traced:0 / traced:1 rows and fails if their msgs_per_sec
differ by more than max-delta-pct (default 2). On the simulated substrate
the delta should be exactly zero: the flight recorder is pure observability,
so ANY divergence means a TraceRing started feeding back into protocol
behavior (changed timing, extra allocations on the sim clock, ...). The 2%
ceiling keeps headroom for a future real-time variant of this bench.

Also requires every traced row to have actually recorded events
(trace_events > 0) so the comparison cannot silently pass with tracing off.
"""
import json
import re
import subprocess
import sys


def fail(msg: str) -> None:
    print(f"check_trace_overhead: {msg}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    if len(sys.argv) < 3:
        fail(f"usage: {sys.argv[0]} <bench-binary> <json-path> [max-delta-pct]")
    binary, path = sys.argv[1], sys.argv[2]
    max_delta_pct = float(sys.argv[3]) if len(sys.argv) > 3 else 2.0

    proc = subprocess.run([binary, f"--json={path}"], timeout=600)
    if proc.returncode != 0:
        fail(f"{binary} exited {proc.returncode}")

    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")

    # Rows are named .../style:N/traced:M — pair them by style.
    by_style: dict[str, dict[int, dict]] = {}
    for result in report.get("results", []):
        m = re.search(r"style:(\d+)/traced:(\d+)", result.get("name", ""))
        if not m:
            continue
        by_style.setdefault(m.group(1), {})[int(m.group(2))] = result

    if not by_style:
        fail("no style:N/traced:M rows found in the report")

    for style, rows in sorted(by_style.items()):
        if 0 not in rows or 1 not in rows:
            fail(f"style {style}: missing traced or untraced row")
        base = rows[0]["counters"].get("msgs_per_sec")
        traced = rows[1]["counters"].get("msgs_per_sec")
        if not base or traced is None:
            fail(f"style {style}: msgs_per_sec missing or zero")
        events = rows[1]["counters"].get("trace_events", 0)
        if events <= 0:
            fail(f"style {style}: traced row recorded no trace events")
        delta_pct = abs(traced - base) / base * 100.0
        print(
            f"style {style}: untraced={base:.0f} traced={traced:.0f} "
            f"msgs/s delta={delta_pct:.3f}% ({events:.0f} events)"
        )
        if delta_pct > max_delta_pct:
            fail(
                f"style {style}: tracing changed throughput by "
                f"{delta_pct:.3f}% (> {max_delta_pct}%)"
            )
    print(f"ok: tracing overhead within {max_delta_pct}% for all styles")


if __name__ == "__main__":
    main()

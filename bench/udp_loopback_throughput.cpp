// UDP loopback hot-path shoot-out (DESIGN.md §12, §15): the three datapath
// backend generations head to head on real loopback sockets —
//
//   per-datagram — one sendto()/recv() syscall per datagram.
//   mmsg         — TX handoff ring + sendmmsg (up to 64 datagrams/syscall)
//                  on the I/O thread, recvmmsg (up to 32/syscall).
//   io_uring     — submission-queue TX with linked fan-out SQEs, multishot
//                  recv into registered provided buffers; the I/O thread
//                  reaps completions off one ring fd instead of polling
//                  nine sockets. Skipped (with an error) when the kernel
//                  or build lacks it.
//
// The workload is the transport's actual hot path under Totem: broadcast.
// One sender fans each message out to kFanout receivers (the SRP broadcasts
// every regular message; only tokens are unicast), so one logical send is
// kFanout datagrams. A dedicated I/O thread runs the reactor; the main
// thread plays the ordering thread's role (producing sends, draining every
// receiver's RX ring). All backends use the same threads and the same
// bounded in-flight window; only the syscall strategy differs.
//
// Each datagram carries its send timestamp; receiver 1 records
// send->dispatch latency, reported as p50/p99. Results land in
// BENCH_udp_loopback_throughput.json (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench_report.h"
#include "common/bytes.h"
#include "net/datapath.h"
#include "net/reactor.h"
#include "net/udp_transport.h"

namespace totem::net {
namespace {

constexpr std::uint16_t kPortBase = 45000;  // 43xxx/44xxx belong to tests
constexpr std::uint32_t kFanout = 8;        // receivers per broadcast
constexpr std::size_t kPayload = 256;       // bytes per datagram
constexpr std::size_t kWindow = 512;        // max broadcasts in flight
constexpr auto kMeasure = std::chrono::milliseconds(800);

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  const std::size_t idx =
      std::min(v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
  return v[idx];
}

DatapathBackend arg_backend(int arg) {
  switch (arg) {
    case 0: return DatapathBackend::kPerDatagram;
    case 2: return DatapathBackend::kIoUring;
    default: return DatapathBackend::kMmsg;
  }
}

void BM_UdpLoopbackThroughput(benchmark::State& state) {
  const DatapathBackend backend = arg_backend(static_cast<int>(state.range(0)));
  if (backend == DatapathBackend::kIoUring && !io_uring_available()) {
    state.SkipWithError(io_uring_compiled()
                            ? "io_uring probe failed on this kernel"
                            : "io_uring backend not compiled in");
    return;
  }
  const bool batched = backend != DatapathBackend::kPerDatagram;
  // Distinct port blocks per backend so a crashed previous run cannot collide.
  const std::uint16_t base =
      static_cast<std::uint16_t>(kPortBase + 100 * state.range(0));

  std::uint64_t sent_datagrams = 0;
  std::uint64_t received = 0;
  double elapsed_s = 0;
  std::vector<double> latencies_us;
  Transport::Stats tx_stats{};
  std::uint64_t rx_batches_total = 0;

  for (auto _ : state) {
    Reactor reactor;
    const std::uint32_t nodes = kFanout + 1;
    UdpTransport::Config scfg;
    scfg.local_node = 0;
    scfg.peers = loopback_peers(base, nodes);
    scfg.backend = backend;
    scfg.require_backend = true;  // availability was checked above
    scfg.batched_syscalls = batched;
    scfg.tx_queue_capacity = batched ? 2048 : 0;
    scfg.socket_buffer_bytes = 1 << 20;  // deep window: don't let 64 KB cap it
    // The window keeps kWindow * kFanout = 2048 datagrams in flight; size the
    // sender's submission queue and TX completion slots so a full window never
    // backlogs, and each receiver's provided-buffer pool so a burst directed
    // at one socket cannot exhaust it between reaps.
    scfg.uring_sq_entries = 2048;
    scfg.uring_tx_slots = 8192;
    auto sender = UdpTransport::create(reactor, scfg);
    if (!sender.is_ok()) {
      state.SkipWithError("sender socket setup failed");
      return;
    }
    std::vector<std::unique_ptr<UdpTransport>> receivers;
    for (NodeId id = 1; id < nodes; ++id) {
      UdpTransport::Config rcfg;
      rcfg.local_node = id;
      rcfg.peers = loopback_peers(base, nodes);
      rcfg.backend = backend;
      rcfg.require_backend = true;
      rcfg.batched_syscalls = batched;
      rcfg.rx_queue_capacity = 8192;  // all backends: dispatch on the main thread
      rcfg.socket_buffer_bytes = 1 << 20;
      rcfg.uring_rx_buffers = 2048;
      auto r = UdpTransport::create(reactor, rcfg);
      if (!r.is_ok()) {
        state.SkipWithError("receiver socket setup failed");
        return;
      }
      receivers.push_back(std::move(r).take());
    }
    UdpTransport& tx = *sender.value();

    latencies_us.clear();
    latencies_us.reserve(1 << 20);
    // Receiver 1 is the latency observer and the in-flight window's clock;
    // the others just count deliveries.
    receivers[0]->set_rx_handler([&](ReceivedPacket&& p) {
      std::uint64_t ts = 0;
      if (p.data.size() >= sizeof(ts)) {
        std::memcpy(&ts, p.data.data(), sizeof(ts));
        latencies_us.push_back(static_cast<double>(now_ns() - ts) / 1e3);
      }
    });
    for (std::size_t i = 1; i < receivers.size(); ++i) {
      receivers[i]->set_rx_handler([](ReceivedPacket&&) {});
    }

    std::thread io([&] { reactor.run(); });

    Bytes payload(kPayload);
    sent_datagrams = received = 0;
    std::size_t in_flight = 0;  // broadcasts not yet seen by receiver 1
    const auto start = std::chrono::steady_clock::now();
    const auto end = start + kMeasure;
    auto last_progress = start;
    while (std::chrono::steady_clock::now() < end) {
      // Refill with hysteresis: top the window back up only once half of it
      // has drained, so sends leave in bursts and the batched backends have
      // real backlogs to pack into one syscall (or one submission). All
      // backends use the same pacing; per-datagram just pays kFanout
      // syscalls per broadcast.
      if (in_flight <= kWindow / 2) {
        while (in_flight < kWindow) {
          const std::uint64_t ts = now_ns();
          std::memcpy(payload.data(), &ts, sizeof(ts));
          tx.broadcast(BytesView(payload));
          sent_datagrams += kFanout;
          ++in_flight;
        }
      }
      const std::size_t got0 = receivers[0]->dispatch_queued();
      std::size_t got = got0;
      for (std::size_t i = 1; i < receivers.size(); ++i) {
        got += receivers[i]->dispatch_queued();
      }
      received += got;
      const auto now = std::chrono::steady_clock::now();
      if (got0 > 0) {
        in_flight -= std::min(got0, in_flight);
        last_progress = now;
      } else if (got == 0 && now - last_progress > std::chrono::milliseconds(50)) {
        in_flight = 0;  // the window was lost (socket buffer drop); refill
        last_progress = now;
      }
      // An empty drain round means the I/O thread (and the kernel's softirq
      // work on loopback) is behind us — donate the core instead of spinning
      // on empty SPSC rings. Matters enormously on small machines.
      if (got == 0) std::this_thread::yield();
    }
    // Let stragglers land, then stop the I/O thread so stats reads are
    // race-free (single-writer discipline, see Transport::stats()).
    const auto tail_deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
    while (std::chrono::steady_clock::now() < tail_deadline && received < sent_datagrams) {
      for (auto& r : receivers) received += r->dispatch_queued();
    }
    elapsed_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                    .count();
    reactor.stop();
    reactor.notify();
    io.join();
    for (auto& r : receivers) received += r->dispatch_queued();
    tx_stats = tx.stats();
    rx_batches_total = 0;
    for (auto& r : receivers) rx_batches_total += r->stats().rx_syscall_batches;
  }

  state.SetLabel(backend_name(backend));
  state.counters["packets_per_sec"] = static_cast<double>(received) / elapsed_s;
  state.counters["msgs_per_sec"] =
      static_cast<double>(received) / static_cast<double>(kFanout) / elapsed_s;
  state.counters["sent"] = static_cast<double>(sent_datagrams);
  state.counters["received"] = static_cast<double>(received);
  state.counters["p50_delivery_us"] = percentile(latencies_us, 0.50);
  state.counters["p99_delivery_us"] = percentile(latencies_us, 0.99);
  state.counters["tx_syscall_batches"] = static_cast<double>(tx_stats.tx_syscall_batches);
  state.counters["rx_syscall_batches"] = static_cast<double>(rx_batches_total);
  state.counters["avg_tx_batch"] =
      tx_stats.tx_syscall_batches
          ? static_cast<double>(tx_stats.packets_sent) /
                static_cast<double>(tx_stats.tx_syscall_batches)
          : 0;
  state.counters["avg_rx_batch"] =
      rx_batches_total ? static_cast<double>(received) /
                             static_cast<double>(rx_batches_total)
                       : 0;
}

BENCHMARK(BM_UdpLoopbackThroughput)
    ->Arg(0)   // per-datagram
    ->Arg(1)   // mmsg
    ->Arg(2)   // io_uring
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace totem::net

TOTEM_BENCH_MAIN("udp_loopback_throughput")

// Figure 7: Transmission rate of the Totem RRP in msgs/sec for SIX nodes.
// Same sweep as Figure 6 with a larger ring (the paper's second testbed).
#include "figure_common.h"

namespace totem::harness {
namespace {

void BM_Fig7_SendRate_6Nodes(benchmark::State& state) { figure_bench(state, 6); }
BENCHMARK(BM_Fig7_SendRate_6Nodes)->Apply(register_figure_args);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("fig7_sendrate_6nodes")

// Ablation: flow control (paper §2's "strict sending schedule").
//
//  * Window sweep: the global per-rotation window trades throughput against
//    token-rotation latency. Too small starves the wire; too large inflates
//    delivery latency (and in real deployments, burst loss risk).
//  * Fair-share rule (TOCS flow control, opt-in): under a skewed load, the
//    fair rule caps the heavy sender at its proportional share, improving
//    the light senders' worst-case latency at equal throughput.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "harness/calibration.h"
#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

void BM_WindowSizeSweep(benchmark::State& state) {
  const auto window = static_cast<std::uint32_t>(state.range(0));
  double msgs = 0, p50_latency_us = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.node_count = 4;
    cfg.network_count = 1;
    cfg.style = api::ReplicationStyle::kNone;
    cfg.net_params = paper_net_params();
    cfg.host_costs = paper_host_costs();
    apply_paper_srp_costs(cfg.srp);
    cfg.srp.window_size = window;
    cfg.srp.max_messages_per_visit = std::max<std::uint32_t>(1, window / 2);
    cfg.record_payloads = false;
    SimCluster cluster(cfg);

    std::vector<double> latencies;
    cluster.set_app_deliver_handler(0, [&](const srp::DeliveredMessage& m) {
      ByteReader r(m.payload);
      if (auto ts = r.u64(); ts.is_ok()) {
        latencies.push_back(static_cast<double>(
            cluster.simulator().now().time_since_epoch().count() - ts.value()));
      }
    });
    cluster.start_all();

    // Saturation with timestamped 1 KB messages.
    std::function<void(std::size_t)> refill = [&](std::size_t n) {
      while (cluster.node(n).ring().send_queue_depth() < 128) {
        ByteWriter w;
        w.u64(static_cast<std::uint64_t>(
            cluster.simulator().now().time_since_epoch().count()));
        w.raw(Bytes(1016, std::byte{0x33}));
        if (!cluster.node(n).send(w.view()).is_ok()) break;
      }
      cluster.simulator().schedule(Duration{1'000}, [&refill, n] { refill(n); });
    };
    for (std::size_t n = 0; n < 4; ++n) refill(n);

    cluster.run_for(Duration{200'000});
    cluster.clear_recordings();
    latencies.clear();
    cluster.run_for(Duration{1'000'000});

    msgs = static_cast<double>(cluster.delivered_count(0));
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      p50_latency_us = latencies[latencies.size() / 2];
    }
  }
  state.counters["msgs_per_sec"] = msgs;
  state.counters["p50_latency_us"] = p50_latency_us;
}
BENCHMARK(BM_WindowSizeSweep)
    ->Arg(16)
    ->Arg(40)
    ->Arg(80)  // default
    ->Arg(160)
    ->Arg(320)
    ->ArgNames({"window"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_FairShareUnderSkew(benchmark::State& state) {
  const bool fair = state.range(0) != 0;
  double total_msgs = 0, light_worst_ms = 0;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.node_count = 4;
    cfg.network_count = 2;
    cfg.style = api::ReplicationStyle::kActive;
    cfg.net_params = paper_net_params();
    cfg.host_costs = paper_host_costs();
    apply_paper_srp_costs(cfg.srp);
    cfg.srp.fair_backlog_sharing = fair;
    cfg.record_payloads = false;
    SimCluster cluster(cfg);

    Duration worst{0};
    cluster.set_app_deliver_handler(0, [&](const srp::DeliveredMessage& m) {
      if (m.payload.size() != 16) return;  // only the light probes
      ByteReader r(m.payload);
      if (auto ts = r.u64(); ts.is_ok()) {
        worst = std::max(
            worst, Duration{cluster.simulator().now().time_since_epoch().count() -
                            static_cast<Duration::rep>(ts.value())});
      }
    });
    cluster.start_all();

    // Heavy sender: node 0 only.
    std::function<void()> refill_heavy = [&] {
      while (cluster.node(0).ring().send_queue_depth() < 512) {
        if (!cluster.node(0).send(Bytes(900, std::byte{0x77})).is_ok()) break;
      }
      cluster.simulator().schedule(Duration{1'000}, refill_heavy);
    };
    refill_heavy();
    std::function<void(std::size_t)> probe = [&](std::size_t n) {
      ByteWriter w;
      w.u64(static_cast<std::uint64_t>(
          cluster.simulator().now().time_since_epoch().count()));
      w.raw(Bytes(8, std::byte{0x11}));
      (void)cluster.node(n).send(w.view());
      cluster.simulator().schedule(Duration{10'000}, [&probe, n] { probe(n); });
    };
    for (std::size_t n = 1; n <= 3; ++n) probe(n);

    cluster.run_for(Duration{200'000});
    cluster.clear_recordings();
    worst = Duration{0};
    cluster.run_for(Duration{1'000'000});
    total_msgs = static_cast<double>(cluster.delivered_count(0));
    light_worst_ms = std::chrono::duration<double, std::milli>(worst).count();
  }
  state.counters["total_msgs_per_sec"] = total_msgs;
  state.counters["light_worst_ms"] = light_worst_ms;
  state.SetLabel(fair ? "fair-share" : "simple-window");
}
BENCHMARK(BM_FairShareUnderSkew)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"fair"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("ablation_flow_control")

// Tier-1 smoke test for the benchmark reporting layer: a deliberately tiny
// run (2 nodes, 50 simulated ms) that exercises the full pipeline —
// SimCluster, SaturationDriver, the node-0 metrics registry, and the
// TOTEM_BENCH_MAIN JSON writer. The companion ctest entry (bench/CMakeLists)
// runs it with --json=... and validates that the output parses and carries
// the keys figure regeneration depends on. Kept small enough to stay in the
// default ctest budget even under TOTEM_SANITIZE.
#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "harness/calibration.h"
#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

void BM_Smoke(benchmark::State& state) {
  double msgs_per_sec = 0;
  double kbytes_per_sec = 0;
  MetricsSnapshot metrics;
  for (auto _ : state) {
    ClusterConfig cfg;
    cfg.node_count = 2;
    cfg.network_count = 2;
    cfg.style = api::ReplicationStyle::kActive;
    cfg.net_params = paper_net_params();
    cfg.host_costs = paper_host_costs();
    apply_paper_srp_costs(cfg.srp);
    cfg.record_payloads = false;
    SimCluster cluster(cfg);
    cluster.start_all();

    SaturationDriver driver(cluster, {.message_size = 256, .queue_target = 32});
    driver.start();
    cluster.run_for(Duration{20'000});  // warm-up
    cluster.clear_recordings();
    cluster.node(0).metrics().reset();
    const Duration measured{50'000};
    cluster.run_for(measured);

    const double seconds = std::chrono::duration<double>(measured).count();
    msgs_per_sec = static_cast<double>(cluster.delivered_count(0)) / seconds;
    kbytes_per_sec =
        static_cast<double>(cluster.delivered_bytes(0)) / 1024.0 / seconds;
    metrics = cluster.node(0).metrics().snapshot();
  }

  state.counters["msgs_per_sec"] = msgs_per_sec;
  state.counters["kbytes_per_sec"] = kbytes_per_sec;
  if (const auto* d = metrics.find_histogram("srp.delivery_latency_us")) {
    state.counters["p50_delivery_us"] = d->p50();
    state.counters["p99_delivery_us"] = d->p99();
  }
  if (const auto* r = metrics.find_histogram("srp.token_rotation_us")) {
    state.counters["p50_rotation_us"] = r->p50();
    state.counters["p99_rotation_us"] = r->p99();
  }
}

BENCHMARK(BM_Smoke)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("bench_smoke")

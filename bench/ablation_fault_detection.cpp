// Ablation: network-fault detection thresholds (requirements A5/A6, P4/P5).
//
// The detector must be fast on real failures yet silent on sporadic loss.
// This bench sweeps the active problem-counter threshold and the passive
// reception-imbalance threshold and reports, for each setting:
//   * detection_ms      — time from network failure to the first fault
//                         report anywhere in the cluster;
//   * false_alarms      — fault reports raised in a fault-FREE run with 1%
//                         sporadic loss over 5 simulated seconds.
#include <benchmark/benchmark.h>

#include "bench_report.h"

#include "harness/calibration.h"
#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {
namespace {

ClusterConfig base_config(api::ReplicationStyle style) {
  ClusterConfig cfg;
  cfg.node_count = 4;
  cfg.network_count = 2;
  cfg.style = style;
  cfg.net_params = paper_net_params();
  cfg.host_costs = paper_host_costs();
  apply_paper_srp_costs(cfg.srp);
  cfg.record_payloads = false;
  return cfg;
}

double measure_detection_ms(ClusterConfig cfg) {
  SimCluster cluster(cfg);
  cluster.start_all();
  SaturationDriver driver(cluster, {.message_size = 512, .queue_target = 128});
  driver.start();
  cluster.run_for(Duration{300'000});

  const TimePoint failed_at = cluster.simulator().now();
  cluster.network(1).fail();
  cluster.run_for(Duration{20'000'000});
  if (cluster.faults().empty()) return -1.0;  // never detected
  return std::chrono::duration<double, std::milli>(cluster.faults().front().report.when -
                                                   failed_at)
      .count();
}

std::uint64_t count_false_alarms(ClusterConfig cfg) {
  cfg.net_params.loss_rate = 0.01;
  cfg.seed = 77;
  SimCluster cluster(cfg);
  cluster.start_all();
  SaturationDriver driver(cluster, {.message_size = 512, .queue_target = 128});
  driver.start();
  cluster.run_for(Duration{5'000'000});
  return cluster.faults().size();
}

void BM_ActiveProblemThreshold(benchmark::State& state) {
  double detection = 0;
  std::uint64_t false_alarms = 0;
  for (auto _ : state) {
    ClusterConfig cfg = base_config(api::ReplicationStyle::kActive);
    cfg.active.problem_threshold = static_cast<std::uint32_t>(state.range(0));
    detection = measure_detection_ms(cfg);
    false_alarms = count_false_alarms(cfg);
  }
  state.counters["detection_ms"] = detection;
  state.counters["false_alarms"] = static_cast<double>(false_alarms);
}
BENCHMARK(BM_ActiveProblemThreshold)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)  // default
    ->Arg(25)
    ->Arg(100)
    ->ArgNames({"threshold"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_PassiveImbalanceThreshold(benchmark::State& state) {
  double detection = 0;
  std::uint64_t false_alarms = 0;
  for (auto _ : state) {
    ClusterConfig cfg = base_config(api::ReplicationStyle::kPassive);
    cfg.passive.imbalance_threshold = static_cast<std::uint32_t>(state.range(0));
    detection = measure_detection_ms(cfg);
    false_alarms = count_false_alarms(cfg);
  }
  state.counters["detection_ms"] = detection;
  state.counters["false_alarms"] = static_cast<double>(false_alarms);
}
BENCHMARK(BM_PassiveImbalanceThreshold)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)  // default
    ->Arg(100)
    ->Arg(400)
    ->ArgNames({"threshold"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace totem::harness

TOTEM_BENCH_MAIN("ablation_fault_detection")

// Sharded closed-loop KV workload (DESIGN.md §17, EXPERIMENTS.md §14):
// the single-ring kv_closed_loop driver lifted to totem::ShardedKv — R
// independent rings behind one consistent-hash router, 8 closed-loop
// clients per shard, each client pinned to one shard's keyspace so every
// ring carries the same load. Reported per run:
//
//   ops_per_sec    — aggregate completed router operations per second
//   ops_completed  — total completions across all shards
//   shards/clients — sweep coordinates
//   p50_apply_us   — submit -> completion latency percentiles (still one
//   p99_apply_us     ring's token rotation; sharding buys throughput, not
//                    lower latency)
//
// Two substrates, same router and workload:
//   BM_KvShardedSim — SimShardedCluster, shards 1,2,4,8 (virtual time;
//                     rings are identical up to seed, so the sweep isolates
//                     the router + partitioning overhead — near-linear
//                     scaling is the pass condition, see
//                     check_shard_scaling.py)
//   BM_KvShardedUdp — UdpShardedCluster on loopback, shards 1,4
//                     (wall-clock; ONE reactor thread drives all rings, so
//                     in-process throughput is capped by one core no matter
//                     the shard count — the gate bounds the router tax
//                     against the best single-ring kv_closed_loop row; the
//                     sim sweep carries the scaling claim)
//
// Results land in BENCH_kv_sharded_closed_loop.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_report.h"
#include "harness/sharded_cluster.h"
#include "shard/sharded_kv.h"

namespace totem::shard {
namespace {

constexpr std::size_t kClientsPerShard = 8;
constexpr std::size_t kKeysPerShard = 32;
constexpr std::uint16_t kUdpPortBase = 47000;  // 47000s: sharded-bench ports

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  const std::size_t idx = std::min(
      v.size() - 1, static_cast<std::size_t>(p * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
  return v[idx];
}

/// Closed-loop driver over the router: client c is pinned to shard
/// c % shards and cycles through keys that route there, so load is even by
/// construction and the sweep measures ring parallelism, not hash luck.
struct ShardedLoop {
  ShardedKv* kv = nullptr;
  std::size_t shards = 1;
  std::uint64_t target_ops = 1000;

  std::uint64_t completed = 0;
  std::uint64_t op_counter = 0;
  std::vector<double> latencies_us;
  std::vector<std::vector<std::string>> shard_keys;  // [shard][k]
  std::map<std::uint64_t, std::pair<std::size_t, double>> pending;  // op -> (client, t)
  std::vector<std::size_t> stalled;  // clients whose submit was rejected

  /// Clock, per shard: under the lockstep sim each shard has its own
  /// simulator, and an op's submit + completion both happen on its client's
  /// pinned shard — timing it against that shard's clock avoids the
  /// slice-quantization artifacts a single global clock would show.
  std::function<double(std::size_t)> now_us;

  void start() {
    shard_keys.assign(shards, {});
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::uint64_t i = 0; shard_keys[s].size() < kKeysPerShard; ++i) {
        std::string key = "key-" + std::to_string(i);
        if (kv->shard_for(key) == s) shard_keys[s].push_back(std::move(key));
      }
    }
    latencies_us.reserve(target_ops);
    kv->set_completion_handler([this](const OpCompletion& done) {
      auto it = pending.find(done.op);
      if (it == pending.end()) return;
      const auto [client, submitted] = it->second;
      pending.erase(it);
      latencies_us.push_back(now_us(done.shard) - submitted);
      ++completed;
      if (op_counter < target_ops) submit(client);
    });
    for (std::size_t c = 0; c < kClientsPerShard * shards; ++c) submit(c);
  }

  void submit(std::size_t client) {
    const std::size_t s = client % shards;
    const std::uint64_t op = op_counter++;
    const std::string& key = shard_keys[s][op % kKeysPerShard];
    auto r = kv->put(key, to_bytes("v" + std::to_string(op)));
    if (r.is_ok()) {
      pending.emplace(r.value(), std::pair{client, now_us(s)});
    } else {
      // Rejected (backpressure or a not-yet-available shard). A rejected
      // client has nothing pending, so no completion will resubmit it —
      // park it for the driver loop to retry.
      --op_counter;
      stalled.push_back(client);
    }
  }

  /// Driver hook: resubmit every parked client. Safe to call every pump.
  void retry_stalled() {
    if (stalled.empty()) return;
    std::vector<std::size_t> again;
    again.swap(stalled);
    for (std::size_t c : again) {
      if (op_counter < target_ops) submit(c);
    }
  }
};

void report(benchmark::State& state, ShardedLoop& loop, double elapsed_s) {
  state.counters["ops_per_sec"] =
      elapsed_s > 0 ? static_cast<double>(loop.completed) / elapsed_s : 0;
  state.counters["ops_completed"] = static_cast<double>(loop.completed);
  state.counters["shards"] = static_cast<double>(loop.shards);
  state.counters["clients"] = static_cast<double>(kClientsPerShard * loop.shards);
  state.counters["p50_apply_us"] = percentile(loop.latencies_us, 0.50);
  state.counters["p99_apply_us"] = percentile(loop.latencies_us, 0.99);
}

void BM_KvShardedSim(benchmark::State& state) {
  for (auto _ : state) {
    const auto shards = static_cast<std::size_t>(state.range(0));
    harness::ShardedClusterConfig cfg;
    cfg.shard_count = shards;
    harness::SimShardedCluster cluster(cfg);
    cluster.start_all();
    if (!cluster.run_until_live(Duration{5'000'000})) {
      state.SkipWithError("replicas never went live");
      return;
    }

    ShardedLoop loop;
    loop.kv = &cluster.kv();
    loop.shards = shards;
    // Same per-shard work at every sweep point: aggregate ops grow with R,
    // so perfect scaling is flat wall-time and R-times ops/s.
    loop.target_ops = 800 * shards;
    loop.now_us = [&cluster](std::size_t s) {
      return static_cast<double>(cluster.now(s).time_since_epoch().count());
    };

    const double start_us = loop.now_us(0);
    loop.start();
    while (loop.completed < loop.target_ops) {
      cluster.run_for(Duration{100'000});
      loop.retry_stalled();
    }
    const double elapsed_s = (loop.now_us(0) - start_us) / 1e6;
    report(state, loop, elapsed_s);
    state.SetLabel("sim");
  }
}

void BM_KvShardedUdp(benchmark::State& state) {
  for (auto _ : state) {
    const auto shards = static_cast<std::size_t>(state.range(0));
    harness::ShardedClusterConfig cfg;
    cfg.shard_count = shards;
    harness::UdpShardedCluster cluster(cfg, kUdpPortBase);
    if (!cluster.ok().is_ok()) {
      state.SkipWithError("UDP socket setup failed");
      return;
    }
    cluster.start_all();
    if (!cluster.wait_all_live(Duration{10'000'000})) {
      state.SkipWithError("replicas never went live");
      return;
    }

    ShardedLoop loop;
    loop.kv = &cluster.kv();
    loop.shards = shards;
    // Long enough that the measured window dwarfs startup jitter — at
    // ~100k ops/s the 4-shard run still finishes in well under a second.
    loop.target_ops = 40'000 * shards;
    loop.now_us = [](std::size_t) {
      return static_cast<double>(
                 std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count()) /
             1e3;
    };

    const auto start = std::chrono::steady_clock::now();
    const auto deadline = start + std::chrono::seconds(60);
    loop.start();
    while (loop.completed < loop.target_ops &&
           std::chrono::steady_clock::now() < deadline) {
      cluster.poll_once(Duration{5'000});
      loop.retry_stalled();
    }
    const double elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    report(state, loop, elapsed_s);
    state.SetLabel("udp");
  }
}

BENCHMARK(BM_KvShardedSim)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KvShardedUdp)->Arg(1)->Arg(4)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace totem::shard

TOTEM_BENCH_MAIN("kv_sharded_closed_loop")

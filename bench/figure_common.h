// Shared sweep machinery for regenerating the paper's Figures 6-9.
//
// Each figure plots total system send rate (msgs/s — Figs. 6/7) or utilized
// bandwidth (KB/s — Figs. 8/9) against message length for three
// configurations: no replication, active replication, passive replication,
// on 4 nodes (Figs. 6/8) or 6 nodes (Figs. 7/9), with 2 networks.
//
// As in the paper (§8), every node sends as many messages as the flow
// control mechanism permits, and the x-axis sweeps message length on a log
// scale from 100 bytes to 10 Kbytes. The benches report both counters, so
// the msgs/s figures and the KB/s figures come from the same runs.
#pragma once

#include <benchmark/benchmark.h>

#include "bench_report.h"
#include "harness/calibration.h"
#include "harness/drivers.h"
#include "harness/sim_cluster.h"

namespace totem::harness {

struct FigurePoint {
  double msgs_per_sec = 0;
  double kbytes_per_sec = 0;
  double net0_utilization = 0;
  double cpu0_utilization = 0;
  // Node 0's send->deliver latency and token rotation percentiles over the
  // measured second (from its metrics registry; 0 when nothing recorded).
  double p50_delivery_us = 0;
  double p99_delivery_us = 0;
  double p50_rotation_us = 0;
  double p99_rotation_us = 0;
};

/// Run one saturated configuration and measure application-visible
/// throughput over one simulated second (after 200 ms of warm-up).
inline FigurePoint run_figure_point(std::size_t nodes, api::ReplicationStyle style,
                                    std::size_t message_size,
                                    std::size_t network_count = 2) {
  ClusterConfig cfg;
  cfg.node_count = nodes;
  cfg.network_count = style == api::ReplicationStyle::kNone ? 1 : network_count;
  cfg.style = style;
  cfg.net_params = paper_net_params();
  cfg.host_costs = paper_host_costs();
  apply_paper_srp_costs(cfg.srp);
  cfg.record_payloads = false;
  SimCluster cluster(cfg);
  cluster.start_all();

  SaturationDriver driver(cluster, {.message_size = message_size, .queue_target = 256});
  driver.start();
  cluster.run_for(Duration{200'000});
  cluster.clear_recordings();
  cluster.node(0).metrics().reset();  // percentiles cover the measured window

  const auto wire_before = cluster.network(0).stats().wire_busy;
  const auto cpu_before = cluster.host(0).cpu().total_busy();
  const Duration measured{1'000'000};
  cluster.run_for(measured);
  const double seconds = std::chrono::duration<double>(measured).count();

  FigurePoint p;
  p.msgs_per_sec = static_cast<double>(cluster.delivered_count(0)) / seconds;
  p.kbytes_per_sec =
      static_cast<double>(cluster.delivered_bytes(0)) / 1024.0 / seconds;
  p.net0_utilization =
      std::chrono::duration<double>(cluster.network(0).stats().wire_busy - wire_before)
          .count() /
      seconds;
  p.cpu0_utilization =
      std::chrono::duration<double>(cluster.host(0).cpu().total_busy() - cpu_before)
          .count() /
      seconds;
  const MetricsSnapshot metrics = cluster.node(0).metrics().snapshot();
  if (const auto* d = metrics.find_histogram("srp.delivery_latency_us")) {
    p.p50_delivery_us = d->p50();
    p.p99_delivery_us = d->p99();
  }
  if (const auto* r = metrics.find_histogram("srp.token_rotation_us")) {
    p.p50_rotation_us = r->p50();
    p.p99_rotation_us = r->p99();
  }
  return p;
}

/// The paper's x-axis: log-spaced message lengths from 100 B to 10 KB,
/// including the frame-packing peaks at 700 and 1400 bytes.
inline const std::vector<std::int64_t>& figure_message_sizes() {
  static const std::vector<std::int64_t> sizes = {100,  200,  400,  700,  1000,
                                                  1400, 2000, 4000, 7000, 10000};
  return sizes;
}

inline void figure_bench(benchmark::State& state, std::size_t nodes) {
  const auto style = static_cast<api::ReplicationStyle>(state.range(0));
  const auto size = static_cast<std::size_t>(state.range(1));
  FigurePoint p;
  for (auto _ : state) {
    p = run_figure_point(nodes, style, size);
  }
  state.counters["msgs_per_sec"] = p.msgs_per_sec;
  state.counters["kbytes_per_sec"] = p.kbytes_per_sec;
  state.counters["net0_util"] = p.net0_utilization;
  state.counters["cpu0_util"] = p.cpu0_utilization;
  state.counters["p50_delivery_us"] = p.p50_delivery_us;
  state.counters["p99_delivery_us"] = p.p99_delivery_us;
  state.counters["p50_rotation_us"] = p.p50_rotation_us;
  state.counters["p99_rotation_us"] = p.p99_rotation_us;
  state.SetLabel(to_string(style));
}

inline void register_figure_args(benchmark::internal::Benchmark* b) {
  for (auto style : {api::ReplicationStyle::kNone, api::ReplicationStyle::kActive,
                     api::ReplicationStyle::kPassive}) {
    for (auto size : figure_message_sizes()) {
      b->Args({static_cast<std::int64_t>(style), size});
    }
  }
  b->ArgNames({"style", "msg_len"});
  b->Unit(benchmark::kMillisecond);
  b->Iterations(1);
}

}  // namespace totem::harness
